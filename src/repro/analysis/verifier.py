"""Static verification of constraint programs (TGD/EGD sets).

The planner's correctness and termination rest on properties of the
integrity-constraint programs that drive the chase; this module checks them
*before* a program is ever saturated:

* **Safety / range restriction** — every EGD equality is over premise-bound
  variables or constants (``RPA002``), atoms use known VREM relations at
  the right arity (``RPA003``), TGD conclusions are anchored to their
  premise (``RPA004``), names are unique (``RPA001``).
* **Trigger completeness** — a compiled constraint's trigger-relation set
  must cover every premise relation whose atom set can change, and premises
  that read ``size`` must carry the shape-version stamp (``RPA005``); a
  missed trigger makes semi-naive skipping silently drop matches.
* **Commutativity soundness** — the instance order-normalises the
  commutative relations (:data:`~repro.vrem.instance.COMMUTATIVE_RELATIONS`)
  at construction, so premises that *distinguish* operand order only match
  one orientation.  That is fine when the program ships a commutativity
  repair TGD for the relation (the chase rematerialises the swapped form),
  and wrong otherwise (``RPA006``); a constant pinned into a commutative
  input position never matches at all (``RPA007``).
* **Chase termination** — weak acyclicity of the TGD dependency graph: the
  *position graph* has a node per (relation, argument position); each TGD
  adds regular edges from the premise positions of a propagated variable to
  its conclusion positions, and special edges from those premise positions
  to every position holding an existential variable.  A cycle through a
  special edge means fresh labelled nulls can feed their own creation and
  the chase is not guaranteed to terminate (``RPA008``).  A weakly acyclic
  set where an existential-receiving position still reaches a positional
  cycle is reported one tier lower (``RPA009``).

EGDs do not add edges to the position graph (they only merge classes), so
the termination analysis is over the TGD subset — the standard setting of
the weak-acyclicity result.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.constraints.core import Constraint, EGD, TGD
from repro.vrem.atoms import Atom, Const, Var
from repro.vrem.instance import COMMUTATIVE_RELATIONS
from repro.vrem.schema import VREM_SCHEMA

#: A node of the position graph: (relation, argument position).
Position = Tuple[str, int]


def _atom_findings(program: str, constraint: Constraint, atoms: Sequence[Atom],
                   side: str) -> List[Finding]:
    """RPA003: unknown relations / arity mismatches in raw-built atoms."""
    findings: List[Finding] = []
    target = f"{program}:{constraint.name}"
    for atom in atoms:
        spec = VREM_SCHEMA.get(atom.relation)
        if spec is None:
            findings.append(Finding(
                code="RPA003", target=target,
                message=f"{side} atom uses unknown relation {atom.relation!r}",
            ))
        elif len(atom.args) != spec.arity:
            findings.append(Finding(
                code="RPA003", target=target,
                message=(
                    f"{side} atom {atom.relation}/{len(atom.args)} does not "
                    f"match declared arity {spec.arity}"
                ),
            ))
    return findings


def _check_safety(program: str, constraints: Sequence[Constraint]) -> List[Finding]:
    """RPA001/RPA002/RPA003/RPA004 over the raw constraint list."""
    findings: List[Finding] = []
    seen_names: Set[str] = set()
    for constraint in constraints:
        target = f"{program}:{constraint.name}"
        if constraint.name in seen_names:
            findings.append(Finding(
                code="RPA001", target=target,
                message="constraint name is declared more than once",
            ))
        seen_names.add(constraint.name)
        findings.extend(_atom_findings(program, constraint, constraint.premise, "premise"))
        if not constraint.premise:
            findings.append(Finding(
                code="RPA003", target=target, message="premise is empty",
            ))
        premise_vars = set(constraint.premise_variables())
        if isinstance(constraint, EGD):
            if not constraint.equalities:
                findings.append(Finding(
                    code="RPA003", target=target, message="EGD has no equalities",
                ))
            for left, right in constraint.equalities:
                for side_term in (left, right):
                    if isinstance(side_term, Var) and side_term not in premise_vars:
                        findings.append(Finding(
                            code="RPA002", target=target,
                            message=(
                                f"equality references variable ?{side_term.name} "
                                f"which the premise never binds"
                            ),
                        ))
                if (
                    isinstance(left, Const)
                    and isinstance(right, Const)
                    and left.value != right.value
                ):
                    findings.append(Finding(
                        code="RPA002", target=target,
                        message=(
                            f"equality {left.value!r} = {right.value!r} can "
                            f"never hold; the first match raises ChaseError"
                        ),
                    ))
        elif isinstance(constraint, TGD):
            findings.extend(
                _atom_findings(program, constraint, constraint.conclusion, "conclusion")
            )
            if not constraint.conclusion:
                findings.append(Finding(
                    code="RPA003", target=target, message="TGD has no conclusion",
                ))
            else:
                conclusion_vars = {
                    var for atom in constraint.conclusion for var in atom.variables()
                }
                if premise_vars and conclusion_vars and not (premise_vars & conclusion_vars):
                    findings.append(Finding(
                        code="RPA004", target=target,
                        message=(
                            "conclusion shares no variable with the premise; "
                            "every match generates disconnected fresh atoms"
                        ),
                    ))
    return findings


# ---------------------------------------------------------------------------
# Commutativity soundness
# ---------------------------------------------------------------------------

def _commutative_input_positions(relation: str) -> Tuple[int, ...]:
    spec = VREM_SCHEMA.get(relation)
    return spec.input_positions if spec is not None else ()


def _atom_signature(atom: Atom, mapping: Dict[Var, Var]) -> Optional[Tuple]:
    """Canonical, order-normalised signature of a fully mapped premise atom."""
    terms: List[object] = []
    for arg in atom.args:
        if isinstance(arg, Var):
            image = mapping.get(arg)
            if image is None:
                return None
            terms.append(("v", image.name))
        elif isinstance(arg, Const):
            terms.append(("c", repr(arg.value)))
        else:
            terms.append(("k", arg))
    if atom.relation in COMMUTATIVE_RELATIONS:
        inputs = _commutative_input_positions(atom.relation)
        if len(inputs) == 2:
            i, j = inputs
            if terms[i] > terms[j]:
                terms[i], terms[j] = terms[j], terms[i]
    return (atom.relation, tuple(terms))


def _premise_has_swap_automorphism(premise: Sequence[Atom], a: Var, b: Var) -> bool:
    """Whether some variable bijection exchanging ``a`` and ``b`` maps the
    premise (as an atom multiset, modulo commutative operand order) onto
    itself.  Premises are tiny (≤ 8 atoms), so a direct backtracking search
    over atom-to-atom assignments is plenty fast.
    """
    atoms = list(premise)
    identity: Dict[Var, Var] = {}
    for atom in atoms:
        for var in atom.variables():
            identity.setdefault(var, var)
    mapping: Dict[Var, Var] = dict(identity)
    mapping[a], mapping[b] = b, a

    target_signatures: Dict[Tuple, int] = defaultdict(int)
    for atom in atoms:
        signature = _atom_signature(atom, identity)
        target_signatures[signature] += 1

    def assign(index: int, current: Dict[Var, Var]) -> bool:
        if index == len(atoms):
            produced: Dict[Tuple, int] = defaultdict(int)
            for atom in atoms:
                signature = _atom_signature(atom, current)
                if signature is None:
                    return False
                produced[signature] += 1
            return produced == target_signatures
        # The swap is total already (every variable has an image seeded from
        # the identity); the "search" is just the final multiset comparison
        # unless we later generalise to partial mappings.
        return assign(len(atoms), current)

    if assign(0, mapping):
        return True

    # The plain swap failed; search for a bijection that swaps a/b and is
    # free on every other variable.  Backtrack over images of the remaining
    # variables, pruning through per-atom signatures.
    variables = [v for v in identity if v not in (a, b)]
    candidates = list(identity)

    def extend(position: int, current: Dict[Var, Var], used: Set[Var]) -> bool:
        if position == len(variables):
            produced: Dict[Tuple, int] = defaultdict(int)
            for atom in atoms:
                signature = _atom_signature(atom, current)
                if signature is None:
                    return False
                produced[signature] += 1
            return produced == target_signatures
        var = variables[position]
        for image in candidates:
            if image in used:
                continue
            current[var] = image
            if extend(position + 1, current, used | {image}):
                return True
        current.pop(var, None)
        return False

    partial: Dict[Var, Var] = {a: b, b: a}
    return extend(0, partial, {a, b})


def _repair_relations(constraints: Sequence[Constraint]) -> Set[str]:
    """Commutative relations covered by an explicit commutativity TGD.

    A repair rule has the shape ``R(x, y, z) -> … R(y, x, z) …`` — a single
    premise atom over ``R`` with distinct variable operands whose swapped
    form appears in the conclusion.  When present, the chase rematerialises
    both operand orientations, so order-sensitive premises over ``R``
    elsewhere in the program still (eventually) match.
    """
    repaired: Set[str] = set()
    for constraint in constraints:
        if not isinstance(constraint, TGD) or len(constraint.premise) != 1:
            continue
        atom = constraint.premise[0]
        if atom.relation not in COMMUTATIVE_RELATIONS:
            continue
        inputs = _commutative_input_positions(atom.relation)
        if len(inputs) != 2:
            continue
        i, j = inputs
        args = atom.args
        if not all(isinstance(arg, Var) for arg in args):
            continue
        if args[i] == args[j]:
            continue
        swapped = list(args)
        swapped[i], swapped[j] = swapped[j], swapped[i]
        for head in constraint.conclusion:
            if head.relation == atom.relation and tuple(head.args) == tuple(swapped):
                repaired.add(atom.relation)
                break
    return repaired


def _check_commutativity(program: str, constraints: Sequence[Constraint]) -> List[Finding]:
    """RPA006/RPA007 over premise atoms of order-normalised relations."""
    findings: List[Finding] = []
    repaired = _repair_relations(constraints)
    for constraint in constraints:
        target = f"{program}:{constraint.name}"
        for atom in constraint.premise:
            if atom.relation not in COMMUTATIVE_RELATIONS:
                continue
            inputs = _commutative_input_positions(atom.relation)
            if len(inputs) != 2:
                continue
            left, right = atom.args[inputs[0]], atom.args[inputs[1]]
            if isinstance(left, Const) or isinstance(right, Const):
                findings.append(Finding(
                    code="RPA007", target=target,
                    message=(
                        f"premise atom {atom!r} pins a constant into a "
                        f"commutative input position of {atom.relation}; "
                        f"canonical atoms carry class IDs there and can "
                        f"never match"
                    ),
                ))
                continue
            if not isinstance(left, Var) or not isinstance(right, Var) or left == right:
                continue
            if atom.relation in repaired:
                continue
            if _premise_has_swap_automorphism(constraint.premise, left, right):
                continue
            findings.append(Finding(
                code="RPA006", target=target,
                message=(
                    f"premise atom {atom!r} distinguishes the operand order "
                    f"of commutative {atom.relation} (operands ?{left.name} "
                    f"/ ?{right.name} play asymmetric roles) and the program "
                    f"has no {atom.relation} commutativity TGD: the swapped "
                    f"orientation of canonical atoms never matches"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# Chase termination: the position graph
# ---------------------------------------------------------------------------

class PositionGraph:
    """The weak-acyclicity dependency graph of a TGD set.

    Nodes are (relation, argument position) pairs; edges carry the set of
    constraint names that contribute them, and special edges additionally
    remember which existential variable they feed.
    """

    def __init__(self, tgds: Sequence[TGD]):
        self.regular: Dict[Position, Set[Position]] = defaultdict(set)
        self.special: Dict[Position, Set[Position]] = defaultdict(set)
        #: (src, dst, is_special) -> contributing constraint names.
        self.edge_owners: Dict[Tuple[Position, Position, bool], Set[str]] = defaultdict(set)
        self.nodes: Set[Position] = set()
        for tgd in tgds:
            premise_positions: Dict[Var, List[Position]] = defaultdict(list)
            for atom in tgd.premise:
                for position, arg in enumerate(atom.args):
                    self.nodes.add((atom.relation, position))
                    if isinstance(arg, Var):
                        premise_positions[arg].append((atom.relation, position))
            conclusion_positions: Dict[Var, List[Position]] = defaultdict(list)
            for atom in tgd.conclusion:
                for position, arg in enumerate(atom.args):
                    self.nodes.add((atom.relation, position))
                    if isinstance(arg, Var):
                        conclusion_positions[arg].append((atom.relation, position))
            existentials = [
                var for var in conclusion_positions if var not in premise_positions
            ]
            for var, sources in premise_positions.items():
                propagated = conclusion_positions.get(var, ())
                if not propagated:
                    # Standard weak-acyclicity (Fagin et al.): only premise
                    # variables that also occur in the head contribute edges
                    # — dropped join variables carry nothing forward.
                    continue
                for src in sources:
                    for dst in propagated:
                        self.regular[src].add(dst)
                        self.edge_owners[(src, dst, False)].add(tgd.name)
                    for ex in existentials:
                        for dst in conclusion_positions[ex]:
                            self.special[src].add(dst)
                            self.edge_owners[(src, dst, True)].add(tgd.name)

    # -------------------------------------------------------------- SCCs
    def _successors(self, node: Position) -> Set[Position]:
        return self.regular.get(node, set()) | self.special.get(node, set())

    def strongly_connected_components(self) -> Dict[Position, int]:
        """Iterative Tarjan; returns node -> component id."""
        index: Dict[Position, int] = {}
        lowlink: Dict[Position, int] = {}
        on_stack: Set[Position] = set()
        stack: List[Position] = []
        component: Dict[Position, int] = {}
        counter = [0]
        comp_counter = [0]

        for root in sorted(self.nodes):
            if root in index:
                continue
            work: List[Tuple[Position, List[Position]]] = [
                (root, sorted(self._successors(root)))
            ]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                while successors:
                    succ = successors.pop()
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, sorted(self._successors(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component[member] = comp_counter[0]
                        if member == node:
                            break
                    comp_counter[0] += 1
        return component

    def _path_within(self, start: Position, goal: Position,
                     component: Dict[Position, int]) -> List[Position]:
        """A successor path start→goal staying inside one SCC (BFS)."""
        comp = component[start]
        if start == goal:
            return [start]
        frontier = [start]
        parents: Dict[Position, Position] = {}
        seen = {start}
        while frontier:
            node = frontier.pop(0)
            for succ in sorted(self._successors(node)):
                if component.get(succ) != comp or succ in seen:
                    continue
                parents[succ] = node
                if succ == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(succ)
                frontier.append(succ)
        return []

    def special_cycles(self) -> List[Tuple[List[Position], FrozenSet[str]]]:
        """Every special edge lying on a cycle, with a witness and owners.

        Returns (cycle, owning constraint names) pairs; the cycle is the
        node sequence ``[src, dst, …, src]`` through the special edge.
        """
        component = self.strongly_connected_components()
        witnesses: List[Tuple[List[Position], FrozenSet[str]]] = []
        for src in sorted(self.special):
            for dst in sorted(self.special[src]):
                if component.get(src) != component.get(dst):
                    continue
                back = self._path_within(dst, src, component)
                if not back:
                    continue
                cycle = [src] + back
                owners = frozenset(self.edge_owners[(src, dst, True)])
                witnesses.append((cycle, owners))
        return witnesses

    def cyclic_nodes(self) -> Set[Position]:
        """Nodes lying on any cycle (SCC of size > 1, or with a self loop)."""
        component = self.strongly_connected_components()
        sizes: Dict[int, int] = defaultdict(int)
        for node, comp in component.items():
            sizes[comp] += 1
        cyclic: Set[Position] = set()
        for node, comp in component.items():
            if sizes[comp] > 1 or node in self._successors(node):
                cyclic.add(node)
        return cyclic

    def reaches(self, start: Position, targets: Set[Position]) -> bool:
        if start in targets:
            return True
        frontier = [start]
        seen = {start}
        while frontier:
            node = frontier.pop()
            for succ in self._successors(node):
                if succ in targets:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False


def _render_position(position: Position) -> str:
    return f"{position[0]}.{position[1]}"


def _check_termination(program: str, constraints: Sequence[Constraint]) -> List[Finding]:
    """RPA008 (not weakly acyclic) / RPA009 (not richly acyclic)."""
    tgds = [c for c in constraints if isinstance(c, TGD)]
    if not tgds:
        return []
    graph = PositionGraph(tgds)
    findings: List[Finding] = []
    witnesses = graph.special_cycles()
    if witnesses:
        reported: Set[str] = set()
        for cycle, owners in witnesses:
            rendered = " -> ".join(_render_position(p) for p in cycle)
            for name in sorted(owners):
                if name in reported:
                    continue
                reported.add(name)
                findings.append(Finding(
                    code="RPA008", target=f"{program}:{name}",
                    message=(
                        f"existential edge lies on position-graph cycle "
                        f"[{rendered}]; chase termination is bounded only by "
                        f"the saturation budgets"
                    ),
                ))
        return findings
    # Weakly acyclic: grade the rich-acyclicity heuristic tier.
    cyclic = graph.cyclic_nodes()
    if not cyclic:
        return findings
    reported: Set[str] = set()
    for src in sorted(graph.special):
        for dst in sorted(graph.special[src]):
            if not graph.reaches(dst, cyclic):
                continue
            for name in sorted(graph.edge_owners[(src, dst, True)]):
                if name in reported:
                    continue
                reported.add(name)
                findings.append(Finding(
                    code="RPA009", target=f"{program}:{name}",
                    message=(
                        f"existential position {_render_position(dst)} can "
                        f"reach a positional cycle; the oblivious chase may "
                        f"diverge even though the set is weakly acyclic"
                    ),
                ))
    return findings


# ---------------------------------------------------------------------------
# Trigger completeness (compiled programs)
# ---------------------------------------------------------------------------

#: Mirrors ``repro.chase.program._METADATA_RELATIONS`` — relations matched
#: against per-class metadata rather than stored atoms.
_METADATA_RELATIONS = frozenset({"size"})


def _check_triggers(program: str, compiled) -> List[Finding]:
    """RPA005 over a compiled program's trigger metadata."""
    findings: List[Finding] = []
    for entry in compiled:
        constraint = entry.constraint
        target = f"{program}:{constraint.name}"
        premise_relations = set()
        for atom in constraint.premise:
            premise_relations.add(atom.relation)
        stored = premise_relations - _METADATA_RELATIONS
        missing = sorted(stored - set(entry.trigger_relations))
        if missing:
            findings.append(Finding(
                code="RPA005", target=target,
                message=(
                    f"premise joins over {missing} but the trigger-relation "
                    f"set is {sorted(entry.trigger_relations)}; semi-naive "
                    f"rounds would skip matches after those relations change"
                ),
            ))
        if (premise_relations & _METADATA_RELATIONS) and not entry.uses_shapes:
            findings.append(Finding(
                code="RPA005", target=target,
                message=(
                    "premise reads `size` (shape metadata) but the compiled "
                    "constraint does not stamp shape_version; shape-driven "
                    "matches would be skipped"
                ),
            ))
        if isinstance(entry.is_tgd, bool) and entry.is_tgd != isinstance(constraint, TGD):
            findings.append(Finding(
                code="RPA005", target=target,
                message="compiled is_tgd flag contradicts the constraint kind",
            ))
    return findings


def _check_footprint_recordable(program: str, compiled) -> List[Finding]:
    """RPA010: trigger relations must lie inside the VREM schema.

    Plan footprints record catalog dependencies through schema relations
    anchored in ``name``/``scalar_name`` facts; selective revalidation
    (:meth:`repro.service.pool.PlanSessionPool.apply_delta`) is sound only
    if every fact that can re-trigger a constraint lives in that
    recordable set.  A compiled constraint triggering on a relation the
    schema does not declare could fire on facts no footprint ever sees.
    """
    findings: List[Finding] = []
    recordable = set(VREM_SCHEMA)
    for entry in compiled:
        target = f"{program}:{entry.constraint.name}"
        outside = sorted(set(entry.trigger_relations) - recordable)
        if outside:
            findings.append(Finding(
                code="RPA010", target=target,
                message=(
                    f"trigger relation(s) {outside} are outside the "
                    f"footprint-recordable VREM schema; a catalog delta "
                    f"could affect this constraint without intersecting "
                    f"any plan footprint"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def verify_constraints(
    constraints: Sequence[Constraint], program: str = "program"
) -> List[Finding]:
    """All constraint-level checks over a raw TGD/EGD list."""
    findings: List[Finding] = []
    findings.extend(_check_safety(program, constraints))
    findings.extend(_check_commutativity(program, constraints))
    findings.extend(_check_termination(program, constraints))
    return findings


def verify_program(program_obj, name: str = "program") -> List[Finding]:
    """All checks — constraint-level plus compiled trigger metadata.

    Accepts a :class:`repro.chase.program.ConstraintProgram` (or anything
    with ``constraints`` and ``compiled`` attributes).
    """
    findings = verify_constraints(program_obj.constraints, name)
    findings.extend(_check_triggers(name, program_obj.compiled))
    findings.extend(_check_footprint_recordable(name, program_obj.compiled))
    return findings


__all__ = [
    "PositionGraph",
    "verify_constraints",
    "verify_program",
]
