"""Findings, rule metadata and the waiver workflow of :mod:`repro.analysis`.

Both analyzers — the constraint-program verifier (:mod:`repro.analysis.verifier`)
and the concurrency/spawn-safety linter (:mod:`repro.analysis.lint`) — report
through one shape: a :class:`Finding` carrying a stable rule code (``RPA0xx``
for constraint rules, ``RPA1xx`` for lint rules), a severity, the *target*
the finding is anchored to (``program:constraint-name`` for constraint
findings, ``path:line`` for lint findings) and a human message.

Severities
----------
``error``
    The construct is wrong: it can deadlock, race, never match, or crash the
    chase at runtime.  Errors fail every run of the CLI and, when
    ``PlannerConfig.verify_constraints == "strict"``, raise at session
    construction.
``warning``
    The construct is statically suspicious but may be intentional (e.g. the
    equational LA theory is deliberately not weakly acyclic — the saturation
    budgets bound the chase instead).  Warnings fail the CLI only under
    ``--strict``; accepted ones are recorded in a waiver file with a
    mandatory reason.

Waivers
-------
A waiver file is a JSON document::

    {"waivers": [
        {"code": "RPA008", "target": "core:add-assoc-*",
         "reason": "associativity is intentionally non-terminating; the
                    saturation budgets bound the chase"}
    ]}

Every entry must carry a non-empty ``reason`` — a waiver without a
justification is itself a configuration error.  ``target`` is an
:mod:`fnmatch` glob matched against ``Finding.target``.  Unused waivers are
reported (they usually mean the underlying finding was fixed and the entry
should be deleted) but do not fail the run.

Lint findings can also be waived inline with a trailing
``# repro-lint: ignore[RPA101]`` comment on the flagged line, for the rare
false positive that is easier to justify next to the code it annotates.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigError

ERROR = "error"
WARNING = "warning"

#: code -> (title, default severity, one-line description).  This table is
#: the source of the rule-code reference in ``docs/architecture.md``.
RULES: Dict[str, Tuple[str, str, str]] = {
    # ------------------------------------------------- constraint verifier
    "RPA001": (
        "duplicate-constraint-name",
        ERROR,
        "Two constraints in one program share a name; trigger bookkeeping "
        "and provenance labels would silently collide.",
    ),
    "RPA002": (
        "unsafe-egd",
        ERROR,
        "An EGD conclusion equates a variable that is not bound by the "
        "premise, or two distinct constants (the chase would raise on the "
        "first match).",
    ),
    "RPA003": (
        "malformed-atom",
        ERROR,
        "A premise or conclusion atom uses an unknown VREM relation or the "
        "wrong arity (possible when constraints are built from raw Atom "
        "objects, bypassing the textual parser).",
    ),
    "RPA004": (
        "disconnected-conclusion",
        WARNING,
        "A TGD conclusion shares no variable with its premise: every match "
        "generates fresh atoms unrelated to what triggered it.",
    ),
    "RPA005": (
        "trigger-incomplete",
        ERROR,
        "A compiled constraint's trigger-relation set misses a premise "
        "relation that can change (or the premise reads `size` without the "
        "shape-version stamp): semi-naive skipping would silently drop "
        "matches.",
    ),
    "RPA006": (
        "commutative-order-sensitive",
        WARNING,
        "A premise distinguishes the operand order of a commutative "
        "relation (add_m/multi_e/add_s/multi_s) and the program ships no "
        "commutativity-repair TGD for it: canonical order-normalised atoms "
        "are only stored in one orientation, so the swapped form never "
        "matches.",
    ),
    "RPA007": (
        "commutative-const-operand",
        ERROR,
        "A premise atom pins a constant into a commutative input position; "
        "ground commutative atoms carry class IDs there, so the premise can "
        "never match a canonical atom.",
    ),
    "RPA008": (
        "not-weakly-acyclic",
        WARNING,
        "The TGD set's position graph has a cycle through a special "
        "(existential) edge: chase termination is not statically guaranteed "
        "and rests entirely on the saturation budgets.",
    ),
    "RPA009": (
        "not-richly-acyclic",
        WARNING,
        "The TGD set is weakly acyclic, but a position that receives "
        "existential nulls can reach a positional cycle: the oblivious "
        "chase may still diverge (heuristic tier).",
    ),
    "RPA010": (
        "trigger-outside-recordable-set",
        ERROR,
        "A compiled constraint triggers on a relation outside the declared "
        "VREM schema — the footprint-recordable set.  Plan footprints "
        "(repro.catalog.footprint) reason over schema relations anchored in "
        "`name`/`scalar_name` facts; a trigger outside that set could fire "
        "on facts a footprint cannot record, so selective delta "
        "revalidation could keep a plan the constraint would have changed.",
    ),
    # ------------------------------------------------------------- linter
    "RPA101": (
        "unguarded-shared-mutation",
        ERROR,
        "A class that owns a threading lock mutates a `self._*` collection "
        "outside any held-lock context although the same attribute is "
        "accessed under the lock elsewhere: a data race.",
    ),
    "RPA102": (
        "blocking-call-in-async",
        ERROR,
        "A blocking call (time.sleep, synchronous Pipe/Connection .recv, "
        "subprocess.run/…) inside an `async def` body stalls the whole "
        "event loop.",
    ),
    "RPA103": (
        "unpicklable-spawn-payload",
        ERROR,
        "A lambda, closure or locally-defined class crosses a process "
        "boundary (multiprocessing Process target/args, a worker_factory "
        "argument): the spawn start method must pickle it and will fail at "
        "runtime.",
    ),
}


def rule_severity(code: str) -> str:
    """Default severity of a rule code (unknown codes are errors)."""
    meta = RULES.get(code)
    return meta[1] if meta else ERROR


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a stable rule code and target."""

    code: str
    target: str
    message: str
    severity: str = ""
    #: ``"constraints"`` or ``"lint"`` — which analyzer produced it.
    source: str = "constraints"
    file: str = ""
    line: int = 0

    def __post_init__(self) -> None:
        if not self.severity:
            object.__setattr__(self, "severity", rule_severity(self.code))

    @property
    def title(self) -> str:
        meta = RULES.get(self.code)
        return meta[0] if meta else self.code

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "rule": self.title,
            "severity": self.severity,
            "target": self.target,
            "message": self.message,
            "source": self.source,
            "file": self.file,
            "line": self.line,
        }

    def render(self) -> str:
        return f"{self.code} [{self.severity}] {self.target}: {self.message}"


@dataclass(frozen=True)
class Waiver:
    """One accepted finding: code + target glob + mandatory reason."""

    code: str
    target: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return finding.code == self.code and fnmatch.fnmatchcase(
            finding.target, self.target
        )


@dataclass
class WaiverReport:
    """Result of applying a waiver file to a finding list."""

    active: List[Finding] = field(default_factory=list)
    waived: List[Tuple[Finding, Waiver]] = field(default_factory=list)
    unused: List[Waiver] = field(default_factory=list)


def load_waivers(path: str) -> List[Waiver]:
    """Parse a waiver file, enforcing the mandatory-reason rule."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read waiver file {path!r}: {exc}") from exc
    entries = document.get("waivers") if isinstance(document, dict) else None
    if not isinstance(entries, list):
        raise ConfigError(
            f"waiver file {path!r} must be an object with a 'waivers' list"
        )
    waivers: List[Waiver] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ConfigError(f"waiver #{index} in {path!r} must be an object")
        code = str(entry.get("code", "")).strip()
        target = str(entry.get("target", "")).strip()
        reason = " ".join(str(entry.get("reason", "")).split())
        if not code or not target:
            raise ConfigError(
                f"waiver #{index} in {path!r} needs both 'code' and 'target'"
            )
        if not reason:
            raise ConfigError(
                f"waiver #{index} ({code} {target!r}) in {path!r} has no "
                f"'reason'; every waiver must justify itself"
            )
        waivers.append(Waiver(code=code, target=target, reason=reason))
    return waivers


def apply_waivers(
    findings: Sequence[Finding], waivers: Sequence[Waiver]
) -> WaiverReport:
    """Split findings into active / waived, tracking unused waiver entries."""
    report = WaiverReport()
    used: set = set()
    for finding in findings:
        matched = None
        for waiver in waivers:
            if waiver.matches(finding):
                matched = waiver
                break
        if matched is None:
            report.active.append(finding)
        else:
            used.add((matched.code, matched.target))
            report.waived.append((finding, matched))
    report.unused = [w for w in waivers if (w.code, w.target) not in used]
    return report


def render_report(
    findings: Sequence[Finding],
    report: WaiverReport,
    strict: bool = False,
) -> str:
    """Human-readable summary of one analyzer run."""
    lines: List[str] = []
    for finding in report.active:
        lines.append(finding.render())
    for finding, waiver in report.waived:
        lines.append(f"waived {finding.render()}  (reason: {waiver.reason})")
    for waiver in report.unused:
        lines.append(
            f"unused waiver {waiver.code} {waiver.target!r} — delete it or "
            f"fix the pattern"
        )
    errors = sum(1 for f in report.active if f.severity == ERROR)
    warnings = len(report.active) - errors
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), {warnings} "
        f"warning(s) active, {len(report.waived)} waived"
    )
    return "\n".join(lines)


def failing(report: WaiverReport, strict: bool) -> List[Finding]:
    """The findings that should fail a run: errors always, warnings under strict."""
    if strict:
        return list(report.active)
    return [f for f in report.active if f.severity == ERROR]


__all__ = [
    "ERROR",
    "WARNING",
    "RULES",
    "Finding",
    "Waiver",
    "WaiverReport",
    "apply_waivers",
    "failing",
    "load_waivers",
    "render_report",
    "rule_severity",
]
