"""The unified front door: one typed, multi-workspace ``Engine``.

HADAD's pitch is a *single* lightweight optimizer any LA/RA/hybrid workload
sits on top of; :class:`Engine` is that single object for this codebase —
and since the Workspace redesign, "any workload" is literal: one engine
serves many named tenant **workspaces** (independent catalog + view set +
planner config bundles, see :mod:`repro.api.workspace`) side by side.

Two construction modes, one behaviour:

* **single-catalog** (the historical surface, kept byte-identical)::

      engine = Engine(catalog, views=[...])
      engine.rewrite(expr)                  # plans in the "default" workspace

  Internally this is a compatibility shim
  (:func:`repro._compat.default_workspace_registry`): the catalog/views
  become the registry's ``"default"`` workspace and every engine-level
  method delegates to it.

* **multi-workspace**::

      registry = WorkspaceRegistry()
      registry.register("tenant-a", catalog_a, views=views_a)
      registry.register("tenant-b", catalog_b, config={"max_rounds": 6})
      engine = Engine(workspaces=registry)
      handle = engine.workspace("tenant-a")  # typed WorkspaceHandle
      handle.rewrite(expr); handle.submit_many(batch); handle.execute(plan)

Each workspace gets its **own** session pool, service and router, and every
shared-cache key carries the workspace identity (``name@v<version>``) — so
tenants never share a stale plan, while identical *(fingerprint, view-set,
config)* requests still dedup within a tenant.  Updating a bundle through
the registry bumps its version; the engine rebuilds that workspace's
runtime on next access and leaves every other tenant's pooled sessions and
cached plans untouched.

Options flow through one frozen, validated
:class:`~repro.config.EngineConfig`; its ``service``/``gateway`` parts are
engine-wide, while the planning knobs live per workspace (the shim maps
``config.planner`` onto the default workspace).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro._compat import default_workspace_registry, suppress_legacy_warnings
from repro.api.workspace import Workspace, WorkspaceRegistry
from repro.backends.registry import BackendRegistry
from repro.config import EngineConfig, GatewayConfig, PlannerConfig
from repro.constraints.views import LAView
from repro.core.result import RewriteResult
from repro.data.catalog import Catalog
from repro.exceptions import ConfigError, UnknownWorkspaceError
from repro.lang import matrix_expr as mx
from repro.planner.session import PlanSession
from repro.service.pool import PlanSessionPool
from repro.service.router import DefaultPolicy, ExecutionRouter, RoutedExecution
from repro.service.service import AnalyticsService, RequestLike, ServiceRequest, ServiceResult


def _coerce_engine_config(config: object) -> EngineConfig:
    if config is None:
        return EngineConfig()
    if isinstance(config, EngineConfig):
        return config
    if isinstance(config, PlannerConfig):
        return EngineConfig(planner=config)
    if isinstance(config, Mapping):
        known = {field.name for field in dataclasses.fields(EngineConfig)}
        unknown = sorted({str(key) for key in config} - known)
        if unknown:
            raise ConfigError(
                f"Engine config got unknown option(s) {unknown}; "
                f"valid EngineConfig fields are {sorted(known)}"
            )
        return EngineConfig(**{str(key): value for key, value in config.items()})
    raise ConfigError(
        f"Engine config must be an EngineConfig, a PlannerConfig or a mapping "
        f"of EngineConfig fields, got {config!r} (type {type(config).__name__})"
    )


class _WorkspaceRuntime:
    """The per-workspace serving state the engine builds and caches.

    One pool (eager, so configuration errors surface at build time), one
    router and one service (both lazy — plan-only workspaces never touch
    backends).  Keyed to the workspace snapshot's version: a registry
    update makes the engine build a fresh runtime and drop this one.
    """

    def __init__(self, engine: "Engine", workspace: Workspace):
        self.engine = engine
        self.workspace = workspace
        service_config = engine.config.service
        self.pool = PlanSessionPool(
            self._session_factory,
            max_sessions=service_config.max_sessions,
            result_cache_size=service_config.result_cache_size,
            workspace=workspace.runtime_key,
        )
        self._router: Optional[ExecutionRouter] = None
        self._service: Optional[AnalyticsService] = None
        self._lock = threading.Lock()

    def _session_factory(self) -> PlanSession:
        workspace = self.workspace
        return PlanSession(
            catalog=workspace.catalog,
            views=list(workspace.views),
            estimator=workspace.estimator,
            config=workspace.config,
        )

    def _require_catalog(self, what: str) -> Catalog:
        if self.workspace.catalog is None:
            raise ConfigError(
                f"workspace {self.workspace.name!r} was registered without a "
                f"catalog, which {what} requires; register it with one to "
                f"execute or serve plans"
            )
        return self.workspace.catalog

    @property
    def router(self) -> ExecutionRouter:
        with self._lock:
            if self._router is None:
                engine = self.engine
                self._router = ExecutionRouter(
                    self._require_catalog("execution routing"),
                    registry=engine.registry,
                    backend_names=engine.config.backends,
                    policy=DefaultPolicy(engine.config.service.preferred_backend),
                )
            return self._router

    @property
    def service(self) -> AnalyticsService:
        if self._service is None:
            catalog = self._require_catalog("the service path")
            router = self.router  # resolved before _lock (router takes it too)
            with self._lock:
                if self._service is None:
                    with suppress_legacy_warnings():
                        self._service = AnalyticsService(
                            catalog,
                            views=list(self.workspace.views),
                            pool=self.pool,
                            router=router,
                            config=self.engine.config.service,
                            workspace=self.workspace.name,
                        )
        return self._service


class WorkspaceHandle:
    """A lightweight typed handle on one workspace of a multi-tenant engine.

    Returned by :meth:`Engine.workspace`; exposes the full ladder —
    ``rewrite`` / ``rewrite_all`` / ``submit`` / ``submit_many`` /
    ``submit_hybrid`` / ``execute`` — scoped to this workspace's catalog,
    views and planner config.  Handles are snapshots: one resolved before a
    registry update keeps planning against the bundle it was resolved with
    (``engine.workspace(name)`` again returns the updated one).
    """

    __slots__ = ("_runtime",)

    def __init__(self, runtime: _WorkspaceRuntime):
        self._runtime = runtime

    # ------------------------------------------------------------------ identity
    @property
    def name(self) -> str:
        return self._runtime.workspace.name

    @property
    def version(self) -> int:
        return self._runtime.workspace.version

    @property
    def catalog(self) -> Optional[Catalog]:
        return self._runtime.workspace.catalog

    @property
    def views(self) -> Tuple[LAView, ...]:
        return self._runtime.workspace.views

    @property
    def config(self) -> PlannerConfig:
        """This workspace's planner config (engine-wide knobs live on
        :attr:`Engine.config`)."""
        return self._runtime.workspace.config  # type: ignore[return-value]

    @property
    def estimator(self) -> Optional[object]:
        return self._runtime.workspace.estimator

    @property
    def pool(self) -> PlanSessionPool:
        return self._runtime.pool

    @property
    def router(self) -> ExecutionRouter:
        return self._runtime.router

    @property
    def service(self) -> AnalyticsService:
        return self._runtime.service

    def describe(self) -> dict:
        return self._runtime.workspace.describe()

    # ------------------------------------------------------------------ planning
    def rewrite(self, expr: mx.Expr) -> RewriteResult:
        """Find the minimum-cost equivalent of ``expr`` in this workspace.

        Synchronous, thread-safe; plans through the workspace's pooled
        sessions and its single-flight shared cache (whose keys carry the
        workspace identity).
        """
        return self._runtime.pool.plan(expr)

    def rewrite_all(self, expressions: Iterable[mx.Expr]) -> List[RewriteResult]:
        """Rewrite a batch, planning each distinct fingerprint exactly once."""
        return [self._runtime.pool.plan(expr) for expr in expressions]

    # ------------------------------------------------------------------ deltas
    def apply_delta(self, delta):
        """Apply a catalog delta to this workspace (see
        :meth:`Engine.apply_delta`); plans whose footprint the delta does
        not touch stay warm.  Returns the
        :class:`~repro.catalog.delta.RevalidationReport`."""
        return self._runtime.engine.apply_delta(self.name, delta)

    # ------------------------------------------------------------------ service path
    def submit(self, item: RequestLike) -> ServiceResult:
        """Plan (and execute, unless the request opts out) one request."""
        return self.service.submit(item)

    def submit_many(
        self, items: Iterable[RequestLike], workers: Optional[int] = None
    ) -> List[ServiceResult]:
        """Plan a batch concurrently (``config.service.plan_workers`` wide)."""
        return self.service.submit_many(items, workers=workers)

    def submit_hybrid(self, query, execute: bool = True) -> ServiceResult:
        """Route a hybrid RA+LA query through this workspace's service."""
        return self.service.submit_hybrid(query, execute=execute)

    # ------------------------------------------------------------------ execution
    def execute(
        self,
        plan: Union[RewriteResult, mx.Expr],
        backend: Optional[str] = None,
        use_rewritten: bool = True,
    ) -> RoutedExecution:
        """Run a finished plan on an execution substrate.

        ``plan`` is a :class:`RewriteResult` (typically from
        :meth:`rewrite`) or a bare expression, which executes as-stated.
        ``backend`` names a registered substrate to try first — the
        capability-aware policy still falls back along LA-capable backends
        on :class:`~repro.exceptions.ExecutionError`.
        """
        if isinstance(plan, mx.Expr):
            plan = RewriteResult(
                original=plan,
                best=plan,
                original_cost=float("nan"),
                best_cost=float("nan"),
                changed=False,
                rewrite_seconds=0.0,
                fingerprint=plan.fingerprint(),
            )
        router = self.router
        if backend is not None and backend not in router.backends:
            raise ConfigError(
                f"unknown backend {backend!r}; this engine registered "
                f"{sorted(router.backends)}"
            )
        request = (
            ServiceRequest(
                expression=plan.original, backend=backend, workspace=self.name
            )
            if backend is not None
            else None
        )
        return router.execute(plan, request=request, use_rewritten=use_rewritten)

    # ------------------------------------------------------------------ stats
    def stats_dict(self) -> dict:
        """JSON-ready snapshot of this workspace's planning-pool counters."""
        return self._runtime.pool.stats_dict()


class Engine:
    """The one typed entry point over planner, service, backends and gateway.

    Parameters
    ----------
    catalog / views / estimator:
        The single-catalog surface: these become the registry's
        ``"default"`` workspace (mutually exclusive with ``workspaces``).
        ``catalog`` is optional for plan-only use; execution and serving
        require one and fail with an actionable
        :class:`~repro.exceptions.ConfigError` otherwise.
    config:
        An :class:`~repro.config.EngineConfig` (or a
        :class:`~repro.config.PlannerConfig`, or a mapping of
        ``EngineConfig`` fields).  Validated — invalid values raise at
        construction, not at first use.  ``config.service`` and
        ``config.gateway`` apply engine-wide; ``config.planner`` configures
        the default workspace of the single-catalog surface.  Registered
        workspaces carry their own :class:`~repro.config.PlannerConfig` —
        combining ``workspaces`` with a non-default ``config.planner``
        raises, never silently ignores.
    registry:
        A :class:`~repro.backends.registry.BackendRegistry`; by default the
        stock substrates.  ``config.backends`` selects which registered
        names this engine instantiates, and every name is checked against
        the registry here.
    workspaces:
        A :class:`~repro.api.WorkspaceRegistry` of named tenant bundles for
        multi-workspace serving; access them via :meth:`workspace`.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        views: Sequence[LAView] = (),
        estimator=None,
        config: Union[EngineConfig, PlannerConfig, Mapping, None] = None,
        registry: Optional[BackendRegistry] = None,
        workspaces: Optional[WorkspaceRegistry] = None,
    ):
        self.config = _coerce_engine_config(config)
        self.registry = registry if registry is not None else BackendRegistry.with_defaults()
        missing = [name for name in self.config.backends if name not in self.registry]
        if missing:
            raise ConfigError(
                f"EngineConfig.backends names unregistered backend(s) {missing}; "
                f"registered: {sorted(self.registry.names())}"
            )
        self._runtimes: Dict[str, _WorkspaceRuntime] = {}
        self._runtimes_lock = threading.Lock()
        #: Per-workspace build serialization: N racers for one cold tenant
        #: must not each compile a constraint program only to discard all
        #: but one — they wait on the single build instead.  Per-name so
        #: one tenant's build never blocks another's.
        self._build_locks: Dict[str, threading.Lock] = {}
        if workspaces is not None:
            if catalog is not None or len(tuple(views)) or estimator is not None:
                raise ConfigError(
                    "Engine got both a WorkspaceRegistry and single-catalog "
                    "arguments (catalog/views/estimator); register the latter "
                    "as a workspace instead"
                )
            if self.config.planner != PlannerConfig():
                # Planning knobs live on each workspace bundle; silently
                # ignoring an engine-wide planner config here would hand
                # the operator default-knob plans with no error.
                raise ConfigError(
                    "Engine got both a WorkspaceRegistry and a non-default "
                    "EngineConfig.planner; planner options are per-workspace "
                    "— set them on each Workspace's config instead"
                )
            self.workspaces = workspaces
        else:
            # The legacy single-catalog constructor: a default-workspace
            # shim (repro._compat), built eagerly so configuration errors
            # (bad estimator name, invalid views) surface here.
            self.workspaces = default_workspace_registry(
                catalog=catalog,
                views=views,
                estimator=estimator,
                planner=self.config.planner,
            )
            self.workspace()
        #: The AnalyticsGateway once built; typed loosely because the
        #: server package is imported lazily (``serve`` is optional).
        self._gateway: Optional[Any] = None

    # ------------------------------------------------------------------ workspaces
    def workspace(self, name: Optional[str] = None) -> WorkspaceHandle:
        """A typed handle on the named workspace (default: the default one).

        Resolves the current bundle from the registry; when its version
        moved since the last access (a :meth:`WorkspaceRegistry.update`),
        the workspace's runtime — pool, sessions, cached plans — is rebuilt
        fresh while every other workspace's runtime is left untouched.
        Unknown names raise
        :class:`~repro.exceptions.UnknownWorkspaceError`.
        """
        if name is None:
            name = self.workspaces.default_name
        while True:
            try:
                snapshot = self.workspaces.get(name)
            except UnknownWorkspaceError:
                # Reap the state of a workspace removed from the registry —
                # its pool, sessions and cached plans must not outlive it.
                with self._runtimes_lock:
                    self._runtimes.pop(name, None)
                    self._build_locks.pop(name, None)
                raise
            # The registry hands out the stored Workspace object itself, so
            # object identity — not version numbers — decides whether the
            # cached runtime still reflects the registered bundle.
            with self._runtimes_lock:
                runtime = self._runtimes.get(name)
                if runtime is not None and runtime.workspace is snapshot:
                    return WorkspaceHandle(runtime)
            # Built OUTSIDE _runtimes_lock (one tenant's build must not
            # stall another's handle resolution) but UNDER this name's
            # build lock, so concurrent cold-start racers wait on a single
            # compile instead of each burning one.
            with self._build_lock_for(name):
                with self._runtimes_lock:
                    runtime = self._runtimes.get(name)
                    if runtime is not None and runtime.workspace is snapshot:
                        return WorkspaceHandle(runtime)  # built while we waited
                # Re-read before compiling: the bundle may have moved while
                # we waited on the lock, and a superseded snapshot must not
                # cost a constraint-program compile just to be discarded.
                try:
                    if self.workspaces.get(name) is not snapshot:
                        continue
                except UnknownWorkspaceError:
                    with self._runtimes_lock:
                        self._runtimes.pop(name, None)
                        self._build_locks.pop(name, None)
                    raise
                fresh = _WorkspaceRuntime(self, snapshot)
                with self._runtimes_lock:
                    try:
                        current = self.workspaces.get(name)
                    except UnknownWorkspaceError:
                        self._runtimes.pop(name, None)
                        self._build_locks.pop(name, None)
                        raise
                    if current is snapshot:
                        self._runtimes[name] = fresh
                        return WorkspaceHandle(fresh)
            # The bundle moved while we were building (update or
            # remove+re-register): never install — or serve — a runtime for
            # a superseded snapshot; resolve the current one instead.

    def _build_lock_for(self, name: str) -> threading.Lock:
        with self._runtimes_lock:
            lock = self._build_locks.get(name)
            if lock is None:
                lock = threading.Lock()
                self._build_locks[name] = lock
            return lock

    def workspace_names(self) -> Tuple[str, ...]:
        """The registered workspace names, sorted."""
        return self.workspaces.names()

    def has_workspace(self, name: str) -> bool:
        """Whether ``name`` is registered (cheap; never builds anything)."""
        return name in self.workspaces

    def runtime_ready(self, name: str) -> bool:
        """Whether ``name``'s runtime is built for its current bundle.

        A cheap probe (two dict lookups, no building): the gateway uses it
        to keep cached-runtime resolution inline on the event loop while
        offloading first-request/post-update builds to a worker thread.
        """
        try:
            snapshot = self.workspaces.get(name)
        except UnknownWorkspaceError:
            return False
        with self._runtimes_lock:
            runtime = self._runtimes.get(name)
            return runtime is not None and runtime.workspace is snapshot

    def register_workspace(self, name: str, **fields) -> WorkspaceHandle:
        """Register a workspace bundle and return its handle (convenience
        for :meth:`WorkspaceRegistry.register` + :meth:`workspace`)."""
        self.workspaces.register(name, **fields)
        return self.workspace(name)

    def describe_workspaces(self) -> List[dict]:
        """JSON-ready workspace summaries (the ``/v1/workspaces`` payload)."""
        return self.workspaces.describe()

    def describe_workspace(self, name: str) -> dict:
        """JSON-ready summary of one workspace.

        Reads the registry snapshot only — no runtime (pool, sessions) is
        built, so describing a registered-but-idle tenant stays cheap.
        """
        return self.workspaces.get(name).describe()

    @property
    def default_workspace_name(self) -> Optional[str]:
        """The default route for requests without a workspace, if present."""
        name = self.workspaces.default_name
        return name if name in self.workspaces else None

    def _default_handle(self, what: str) -> WorkspaceHandle:
        name = self.workspaces.default_name
        if name not in self.workspaces:
            raise ConfigError(
                f"this engine has no {name!r} workspace, which {what} targets; "
                f"use engine.workspace(<name>) with one of "
                f"{list(self.workspaces.names())} or register a default"
            )
        return self.workspace(name)

    # ------------------------------------------------------------------ default-workspace surface
    # The historical single-catalog attribute and method surface, delegated
    # to the default workspace so existing callers (and the parity
    # benchmarks) are untouched by the multi-workspace redesign.
    @property
    def catalog(self) -> Optional[Catalog]:
        return self._default_handle("Engine.catalog").catalog

    @property
    def views(self) -> List[LAView]:
        return list(self._default_handle("Engine.views").views)

    @property
    def estimator(self) -> Optional[object]:
        return self._default_handle("Engine.estimator").estimator

    @property
    def pool(self) -> PlanSessionPool:
        return self._default_handle("Engine.pool").pool

    @property
    def router(self) -> ExecutionRouter:
        """The default workspace's plan router (built on first use)."""
        return self._default_handle("Engine.router").router

    @property
    def service(self) -> AnalyticsService:
        """The default workspace's service (built on first use)."""
        return self._default_handle("Engine.service").service

    def rewrite(self, expr: mx.Expr) -> RewriteResult:
        """Find the minimum-cost equivalent of ``expr``.

        Synchronous, thread-safe, and byte-identical to the legacy
        ``HadadOptimizer.rewrite`` path: plans in the default workspace,
        whose pooled sessions are built from the same
        :class:`~repro.config.PlannerConfig` the façade folds its keywords
        into.
        """
        return self._default_handle("Engine.rewrite").rewrite(expr)

    def rewrite_all(self, expressions: Iterable[mx.Expr]) -> List[RewriteResult]:
        """Rewrite a batch, planning each distinct fingerprint exactly once."""
        return self._default_handle("Engine.rewrite_all").rewrite_all(expressions)

    def submit(self, item: RequestLike) -> ServiceResult:
        """Plan (and execute, unless the request opts out) one request."""
        return self._default_handle("Engine.submit").submit(item)

    def submit_many(
        self, items: Iterable[RequestLike], workers: Optional[int] = None
    ) -> List[ServiceResult]:
        """Plan a batch concurrently (``config.service.plan_workers`` wide)."""
        return self._default_handle("Engine.submit_many").submit_many(
            items, workers=workers
        )

    def submit_hybrid(self, query, execute: bool = True) -> ServiceResult:
        """Route a hybrid RA+LA query through the service."""
        return self._default_handle("Engine.submit_hybrid").submit_hybrid(
            query, execute=execute
        )

    def execute(
        self,
        plan: Union[RewriteResult, mx.Expr],
        backend: Optional[str] = None,
        use_rewritten: bool = True,
    ) -> RoutedExecution:
        """Run a finished plan on an execution substrate (default workspace)."""
        return self._default_handle("Engine.execute").execute(
            plan, backend=backend, use_rewritten=use_rewritten
        )

    # ------------------------------------------------------------------ deltas
    def apply_delta(self, name: Optional[str], delta) -> "RevalidationReport":
        """Apply a catalog delta to a workspace, revalidating selectively.

        The registry installs the new snapshot (catalog mutated in place,
        views re-derived, version bumped, transition journaled); if the
        workspace has a warm runtime, it is *kept* — the engine swaps the
        snapshot in and asks the runtime's pool to revalidate its shared
        plan cache against the delta's footprint instead of rebuilding pool,
        sessions and cached plans from scratch (contrast
        :meth:`WorkspaceRegistry.update`, which discards the runtime on next
        access).  Returns the pool's
        :class:`~repro.catalog.delta.RevalidationReport`; a workspace with
        no warm runtime reports zero kept / zero revalidated.
        """
        from repro.catalog.delta import RevalidationReport

        if name is None:
            name = self.workspaces.default_name
        snapshot = self.workspaces.apply_delta(name, delta)
        with self._runtimes_lock:
            runtime = self._runtimes.get(name)
            if runtime is not None:
                # Adopt the new snapshot in place: identity is what
                # :meth:`workspace` checks, so handle resolution keeps
                # hitting this runtime instead of rebuilding it.
                runtime.workspace = snapshot
        if runtime is None:
            return RevalidationReport(
                workspace=snapshot.runtime_key,
                touched=tuple(sorted(delta.touched_names())),
                selective=delta.selective,
            )
        if delta.touches_views:
            # The lazily built service captured the old view list for its
            # hybrid path; drop it so the next use rebuilds against the new
            # snapshot (the router only holds the catalog, shared in place).
            with runtime._lock:
                runtime._service = None
        # Outside _runtimes_lock: revalidation may recompile a prototype
        # session (view-touching deltas), and one tenant's delta must not
        # stall another tenant's handle resolution.  Requests racing this
        # window simply miss (the catalog version already moved) and replan.
        return runtime.pool.apply_delta(delta, workspace=snapshot.runtime_key)

    def delta_chain(self, name: str, from_version: int, to_version: int):
        """Journaled wire-format deltas bridging two bundle versions.

        ``None`` when the journal cannot bridge the gap (fall back to a
        full rebuild); otherwise a list of JSON delta documents, oldest
        first — the supervisor forwards exactly these to the owning worker.
        """
        chain = self.workspaces.delta_chain(name, from_version, to_version)
        if chain is None:
            return None
        return [delta.to_json() for delta in chain]

    # ------------------------------------------------------------------ serving
    def invalidate_workspace(self, name: str) -> None:
        """Drop a workspace's cached runtime (pool, sessions, plans).

        The next request against the name rebuilds from the registry.  The
        worker-pool tier calls this inside each worker process when the
        supervising gateway reports a registry delta, so a worker's warm
        caches never serve a superseded bundle.  Unknown names are a no-op.
        """
        with self._runtimes_lock:
            self._runtimes.pop(name, None)
            self._build_locks.pop(name, None)

    def build_gateway(self, worker_factory=None, **overrides):
        """The asyncio gateway over this engine's workspaces (not started).

        ``overrides`` patch individual :class:`~repro.config.GatewayConfig`
        fields (validated); the result is cached, so :meth:`serve` and the
        caller observe one gateway per engine.  The gateway routes
        per-request ``workspace`` fields across every registered workspace
        and serves ``/v1/workspaces``.

        ``worker_factory`` (required iff ``GatewayConfig.planner_workers``
        > 0) is a picklable zero-argument callable building the engine each
        spawned planner worker process plans with — see
        :mod:`repro.server.workers`.
        """
        if self._gateway is None:
            from repro.server.gateway import AnalyticsGateway

            gateway_config: GatewayConfig = (
                self.config.gateway.with_options(**overrides)
                if overrides
                else self.config.gateway
            )
            # The gateway resolves workspace services lazily (including the
            # default, through its own ``service`` property), so a registry
            # holding plan-only workspaces still serves every other tenant;
            # unservable workspaces answer 422 per request instead of
            # failing the whole gateway here.
            with suppress_legacy_warnings():
                self._gateway = AnalyticsGateway(
                    config=gateway_config,
                    workspaces=self,
                    worker_factory=worker_factory,
                )
        elif overrides or worker_factory is not None:
            raise ConfigError(
                "this engine already built its gateway; configure it via "
                "EngineConfig.gateway (or build_gateway overrides) before first use"
            )
        return self._gateway

    async def serve(self, worker_factory=None, **overrides):
        """Start (and return) the gateway bound to this engine.

        Usage::

            gateway = await engine.serve()
            ...
            await gateway.stop()

        With ``planner_workers=N`` (N > 0) in the gateway config (or as an
        override), pass ``worker_factory`` — a picklable zero-argument
        callable rebuilding this engine — and planning fans out across N
        supervised worker processes sharded by workspace.
        """
        gateway = self.build_gateway(worker_factory=worker_factory, **overrides)
        await gateway.start()
        return gateway

    # ------------------------------------------------------------------ derivation
    def with_views(self, views: Sequence[LAView]) -> "Engine":
        """A new engine over the same catalog/config using another view set.

        A default-workspace convenience (multi-workspace engines
        reconfigure tenants through :meth:`WorkspaceRegistry.update`).
        """
        handle = self._default_handle("Engine.with_views")
        return Engine(
            catalog=handle.catalog,
            views=views,
            estimator=handle.estimator,
            config=self.config,
            registry=self.registry,
        )

    def stats_dict(self) -> dict:
        """JSON-ready snapshot of every built workspace's pool counters.

        Single-workspace engines keep the historical flat shape; engines
        with more than one built runtime nest per-workspace summaries under
        ``"workspaces"``.
        """
        registered = set(self.workspaces.names())
        with self._runtimes_lock:
            # Drop runtimes of workspaces removed from the registry so the
            # snapshot never reports (or retains) deleted tenants.
            for name in [n for n in self._runtimes if n not in registered]:
                del self._runtimes[name]
            runtimes = dict(self._runtimes)
        if set(runtimes) == {self.workspaces.default_name}:
            return runtimes[self.workspaces.default_name].pool.stats_dict()
        return {
            "workspaces": {
                name: runtime.pool.stats_dict()
                for name, runtime in sorted(runtimes.items())
            }
        }


__all__ = ["Engine", "WorkspaceHandle"]
