"""The unified front door: one typed, capability-negotiated ``Engine``.

HADAD's pitch is a *single* lightweight optimizer any LA/RA/hybrid workload
sits on top of; :class:`Engine` is that single object for this codebase.
It offers the full ladder the four historical entry points used to split
between them:

====================================  =========================================
``engine.rewrite(expr)``              synchronous planning over a pooled
                                      session (the ``HadadOptimizer`` path)
``engine.submit`` / ``submit_many``   the concurrent plan-and-execute service
                                      path (``AnalyticsService``)
``engine.submit_hybrid(query)``       hybrid RA+LA queries (``HybridOptimizer``
                                      plus executor, behind the service)
``engine.execute(plan, backend=...)`` route a finished plan to an execution
                                      substrate via the capability-declaring
                                      :class:`~repro.backends.registry.BackendRegistry`
``await engine.serve()``              the asyncio gateway (``AnalyticsGateway``)
                                      bound to this same engine
====================================  =========================================

Options flow exclusively through one frozen, validated
:class:`~repro.config.EngineConfig` — there are no ad-hoc keyword knobs —
and the same config object is threaded down unchanged, so every cache layer
(session, pool, gateway batcher) keys on ``config.cache_key()`` and plans
are byte-identical to the legacy paths by construction.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

from repro._compat import suppress_legacy_warnings
from repro.backends.registry import BackendRegistry
from repro.config import EngineConfig, GatewayConfig, PlannerConfig
from repro.constraints.views import LAView
from repro.core.result import RewriteResult
from repro.data.catalog import Catalog
from repro.exceptions import ConfigError
from repro.lang import matrix_expr as mx
from repro.planner.session import PlanSession
from repro.service.pool import PlanSessionPool
from repro.service.router import DefaultPolicy, ExecutionRouter, RoutedExecution
from repro.service.service import AnalyticsService, RequestLike, ServiceRequest, ServiceResult


def _coerce_engine_config(config: object) -> EngineConfig:
    if config is None:
        return EngineConfig()
    if isinstance(config, EngineConfig):
        return config
    if isinstance(config, PlannerConfig):
        return EngineConfig(planner=config)
    if isinstance(config, Mapping):
        known = {field.name for field in dataclasses.fields(EngineConfig)}
        unknown = sorted({str(key) for key in config} - known)
        if unknown:
            raise ConfigError(
                f"Engine config got unknown option(s) {unknown}; "
                f"valid EngineConfig fields are {sorted(known)}"
            )
        return EngineConfig(**{str(key): value for key, value in config.items()})
    raise ConfigError(
        f"Engine config must be an EngineConfig, a PlannerConfig or a mapping "
        f"of EngineConfig fields, got {config!r} (type {type(config).__name__})"
    )


class Engine:
    """The one typed entry point over planner, service, backends and gateway.

    Parameters
    ----------
    catalog:
        The shared :class:`~repro.data.Catalog`.  Optional for plan-only
        use (``rewrite`` / ``rewrite_all`` work without one); execution
        and serving require it and fail with an actionable
        :class:`~repro.exceptions.ConfigError` otherwise.
    views:
        Materialized LA views every pooled session plans with.
    estimator:
        Sparsity estimator for the cost model (default
        :class:`~repro.cost.NaiveMetadataEstimator`).
    config:
        An :class:`~repro.config.EngineConfig` (or a
        :class:`~repro.config.PlannerConfig`, or a mapping of
        ``EngineConfig`` fields).  Validated — invalid values raise at
        construction, not at first use.
    registry:
        A :class:`~repro.backends.registry.BackendRegistry`; by default the
        stock substrates.  ``config.backends`` selects which registered
        names this engine instantiates, and every name is checked against
        the registry here.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        views: Sequence[LAView] = (),
        estimator=None,
        config: Union[EngineConfig, PlannerConfig, Mapping, None] = None,
        registry: Optional[BackendRegistry] = None,
    ):
        self.config = _coerce_engine_config(config)
        self.catalog = catalog
        self.views = list(views)
        self.estimator = estimator
        self.registry = registry if registry is not None else BackendRegistry.with_defaults()
        missing = [name for name in self.config.backends if name not in self.registry]
        if missing:
            raise ConfigError(
                f"EngineConfig.backends names unregistered backend(s) {missing}; "
                f"registered: {sorted(self.registry.names())}"
            )
        planner = self.config.planner
        self.pool = PlanSessionPool(
            lambda: PlanSession(
                catalog=self.catalog,
                views=self.views,
                estimator=self.estimator,
                config=planner,
            ),
            max_sessions=self.config.service.max_sessions,
            result_cache_size=self.config.service.result_cache_size,
        )
        self._router: Optional[ExecutionRouter] = None
        self._service: Optional[AnalyticsService] = None
        #: The AnalyticsGateway once built; typed loosely because the
        #: server package is imported lazily (``serve`` is optional).
        self._gateway: Optional[Any] = None

    # ------------------------------------------------------------------ wiring
    def _require_catalog(self, what: str) -> Catalog:
        if self.catalog is None:
            raise ConfigError(
                f"this Engine was built without a catalog, which {what} requires; "
                f"construct it as Engine(catalog, ...) to execute or serve plans"
            )
        return self.catalog

    @property
    def router(self) -> ExecutionRouter:
        """The capability-negotiated plan router (built on first use)."""
        if self._router is None:
            self._router = ExecutionRouter(
                self._require_catalog("execution routing"),
                registry=self.registry,
                backend_names=self.config.backends,
                policy=DefaultPolicy(self.config.service.preferred_backend),
            )
        return self._router

    @property
    def service(self) -> AnalyticsService:
        """The concurrent service bound to this engine (built on first use)."""
        if self._service is None:
            catalog = self._require_catalog("the service path")
            with suppress_legacy_warnings():
                self._service = AnalyticsService(
                    catalog,
                    views=self.views,
                    pool=self.pool,
                    router=self.router,
                    config=self.config.service,
                )
        return self._service

    # ------------------------------------------------------------------ planning
    def rewrite(self, expr: mx.Expr) -> RewriteResult:
        """Find the minimum-cost equivalent of ``expr``.

        Synchronous, thread-safe, and byte-identical to the legacy
        ``HadadOptimizer.rewrite`` path: the pooled sessions are built from
        the same :class:`~repro.config.PlannerConfig` the façade folds its
        keywords into, and the pool's shared single-flight cache keys on
        the config's :meth:`~repro.config.PlannerConfig.cache_key`.
        """
        return self.pool.plan(expr)

    def rewrite_all(self, expressions: Iterable[mx.Expr]) -> List[RewriteResult]:
        """Rewrite a batch, planning each distinct fingerprint exactly once."""
        return [self.pool.plan(expr) for expr in expressions]

    # ------------------------------------------------------------------ service path
    def submit(self, item: RequestLike) -> ServiceResult:
        """Plan (and execute, unless the request opts out) one request."""
        return self.service.submit(item)

    def submit_many(
        self, items: Iterable[RequestLike], workers: Optional[int] = None
    ) -> List[ServiceResult]:
        """Plan a batch concurrently (``config.service.plan_workers`` wide)."""
        return self.service.submit_many(items, workers=workers)

    def submit_hybrid(self, query, execute: bool = True) -> ServiceResult:
        """Route a hybrid RA+LA query through the service."""
        return self.service.submit_hybrid(query, execute=execute)

    # ------------------------------------------------------------------ execution
    def execute(
        self,
        plan: Union[RewriteResult, mx.Expr],
        backend: Optional[str] = None,
        use_rewritten: bool = True,
    ) -> RoutedExecution:
        """Run a finished plan on an execution substrate.

        ``plan`` is a :class:`RewriteResult` (typically from
        :meth:`rewrite`) or a bare expression, which executes as-stated.
        ``backend`` names a registered substrate to try first — the
        capability-aware policy still falls back along LA-capable backends
        on :class:`~repro.exceptions.ExecutionError`.
        """
        if isinstance(plan, mx.Expr):
            plan = RewriteResult(
                original=plan,
                best=plan,
                original_cost=float("nan"),
                best_cost=float("nan"),
                changed=False,
                rewrite_seconds=0.0,
                fingerprint=plan.fingerprint(),
            )
        if backend is not None and backend not in self.router.backends:
            raise ConfigError(
                f"unknown backend {backend!r}; this engine registered "
                f"{sorted(self.router.backends)}"
            )
        request = (
            ServiceRequest(expression=plan.original, backend=backend)
            if backend is not None
            else None
        )
        return self.router.execute(plan, request=request, use_rewritten=use_rewritten)

    # ------------------------------------------------------------------ serving
    def build_gateway(self, **overrides):
        """The asyncio gateway over this engine's service (not yet started).

        ``overrides`` patch individual :class:`~repro.config.GatewayConfig`
        fields (validated); the result is cached, so :meth:`serve` and the
        caller observe one gateway per engine.
        """
        if self._gateway is None:
            from repro.server.gateway import AnalyticsGateway

            gateway_config: GatewayConfig = (
                self.config.gateway.with_options(**overrides)
                if overrides
                else self.config.gateway
            )
            service = self.service  # resolves the catalog requirement first
            with suppress_legacy_warnings():
                self._gateway = AnalyticsGateway(service, config=gateway_config)
        elif overrides:
            raise ConfigError(
                "this engine already built its gateway; configure it via "
                "EngineConfig.gateway (or build_gateway overrides) before first use"
            )
        return self._gateway

    async def serve(self, **overrides):
        """Start (and return) the gateway bound to this engine.

        Usage::

            gateway = await engine.serve()
            ...
            await gateway.stop()
        """
        gateway = self.build_gateway(**overrides)
        await gateway.start()
        return gateway

    # ------------------------------------------------------------------ derivation
    def with_views(self, views: Sequence[LAView]) -> "Engine":
        """A new engine over the same catalog/config using another view set."""
        return Engine(
            catalog=self.catalog,
            views=views,
            estimator=self.estimator,
            config=self.config,
            registry=self.registry,
        )

    def stats_dict(self) -> dict:
        """JSON-ready snapshot of the planning pool's counters."""
        return self.pool.stats_dict()


__all__ = ["Engine"]
