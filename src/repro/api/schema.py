"""The typed wire schema: one source of truth for requests and responses.

Everything that crosses the gateway's wire is defined *here, once*, as
typed dataclasses plus an expression codec; both sides of the wire are
generated from these definitions — :mod:`repro.server.protocol` (the
server-side parse/serialize entry points) and
:class:`repro.server.client.GatewayClient` (the client-side encoder) are
thin delegates, so a field added to :class:`PlanRequest` or
:class:`PlanResponse` exists on both sides by construction and the two can
never drift apart.

Three layers live here:

* an **expression codec** — :func:`expr_to_json` / :func:`expr_from_json`
  serialize any :class:`repro.lang.matrix_expr.Expr` tree as plain JSON.
  The encoding mirrors the AST exactly (``op`` / typed ``payload`` /
  ``children``), so a round trip preserves structural equality *and* the
  blake2b fingerprint — the property every cache layer keys on.  Payload
  items carry an explicit type tag because JSON alone cannot distinguish
  ``2`` from ``2.0``, and the fingerprint hashes ``repr(item)`` with its
  type name;
* a **request schema** — :class:`PlanRequest`, the typed body of the POST
  endpoints, convertible to/from JSON and to/from the service layer's
  :class:`~repro.service.service.ServiceRequest`;
* a **response schema** — :class:`PlanResponse` (with :class:`PhaseTimings`),
  the typed ``200``/``422`` response document, built from a
  :class:`~repro.service.service.ServiceResult` and convertible to/from
  JSON, including the size-capped :func:`value_to_json` rendering.

Malformed input raises :class:`ProtocolError` everywhere, which the
gateway maps to ``400``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.exceptions import TypeMismatchError
from repro.lang import matrix_expr as mx
from repro.service.service import ServiceRequest, ServiceResult

#: Protect the decoder against hostile or runaway payloads: an expression
#: tree larger than this is rejected before any node is built.
MAX_EXPR_NODES = 50_000

#: Dense values up to this many elements are inlined in responses; larger
#: ones are summarized by shape/nnz so a huge matrix never floods a socket.
MAX_INLINE_VALUE_ELEMENTS = 64


class ProtocolError(ValueError):
    """A malformed request (bad JSON, unknown op, framing violation)."""


# ---------------------------------------------------------------------------
# Expression codec
# ---------------------------------------------------------------------------


def _op_registry() -> Dict[str, Type[mx.Expr]]:
    """Map canonical op names to concrete Expr classes (computed once).

    Walks the Expr subclass tree; abstract helpers (``_Unary`` / ``_Binary``
    and the ``Expr`` base, recognisable by underscore names or the base
    ``op``) are skipped.  Op names are unique by construction — they mirror
    the VREM relation names — and this asserts it stays that way.
    """
    registry: Dict[str, Type[mx.Expr]] = {}
    stack: List[Type[mx.Expr]] = [mx.Expr]
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        if cls.__name__.startswith("_") or cls.op == mx.Expr.op:
            continue
        existing = registry.get(cls.op)
        if existing is not None and existing is not cls:
            raise RuntimeError(
                f"duplicate op name {cls.op!r}: {existing.__name__} vs {cls.__name__}"
            )
        registry[cls.op] = cls
    return registry


_REGISTRY: Optional[Dict[str, Type[mx.Expr]]] = None


def op_registry() -> Dict[str, Type[mx.Expr]]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _op_registry()
    return _REGISTRY


_PAYLOAD_TYPES = {"int": int, "float": float, "str": str}


def _payload_to_json(payload: Tuple) -> List[dict]:
    items = []
    for item in payload:
        type_name = type(item).__name__
        if type_name not in _PAYLOAD_TYPES:
            raise ProtocolError(f"unserializable payload item {item!r}")
        items.append({"t": type_name, "v": item})
    return items


def _payload_from_json(items: Any) -> Tuple:
    if not isinstance(items, list):
        raise ProtocolError("payload must be a list")
    payload = []
    for item in items:
        if not isinstance(item, dict) or "t" not in item or "v" not in item:
            raise ProtocolError(f"malformed payload item {item!r}")
        caster = _PAYLOAD_TYPES.get(item["t"])
        if caster is None:
            raise ProtocolError(f"unknown payload type {item['t']!r}")
        try:
            payload.append(caster(item["v"]))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad payload value {item!r}") from exc
    return tuple(payload)


def expr_to_json(expr: mx.Expr) -> dict:
    """Encode an expression tree as a JSON-ready dict."""
    return {
        "op": expr.op,
        "payload": _payload_to_json(expr.payload),
        "children": [expr_to_json(child) for child in expr.children],
    }


def expr_from_json(obj: Any, max_nodes: int = MAX_EXPR_NODES) -> mx.Expr:
    """Decode an expression tree, validating ops, arity, payloads and size.

    Nodes are rebuilt through the real subclass constructors: every
    concrete ``Expr`` class takes exactly ``(*children, *payload)`` in
    order, so the constructors' own invariants (non-empty reference names,
    positive identity sizes, non-negative exponents, …) run on every
    decoded node — a leaf smuggling children or an integer where a name
    belongs is rejected here, not as a confusing planner error later.  The
    type tags restored the exact payload types, so fingerprints survive
    the round trip.
    """
    registry = op_registry()
    budget = [max_nodes]

    def build(node: Any) -> mx.Expr:
        if not isinstance(node, dict):
            raise ProtocolError(f"expression node must be an object, got {node!r}")
        budget[0] -= 1
        if budget[0] < 0:
            raise ProtocolError(f"expression exceeds {max_nodes} nodes")
        op = node.get("op")
        cls = registry.get(op) if isinstance(op, str) else None
        if cls is None:
            raise ProtocolError(f"unknown expression op {op!r}")
        children = node.get("children", [])
        if not isinstance(children, list):
            raise ProtocolError("children must be a list")
        if len(children) != cls.arity:
            raise ProtocolError(
                f"{op!r} expects {cls.arity} children, got {len(children)}"
            )
        built = tuple(build(child) for child in children)
        payload = _payload_from_json(node.get("payload", []))
        try:
            return cls(*built, *payload)
        except (TypeMismatchError, TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid {op!r} node: {exc}") from exc

    return build(obj)


# ---------------------------------------------------------------------------
# Value rendering
# ---------------------------------------------------------------------------


def value_to_json(value: Any) -> Optional[dict]:
    """Size-capped JSON rendering of an execution value.

    Scalars and small dense matrices are inlined; anything bigger is
    summarized by shape (and nnz for sparse values) — the caller asked for a
    result, not for megabytes of matrix over a JSON socket.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return {"kind": "scalar", "data": float(value)}
    if hasattr(value, "tocsr"):  # scipy sparse
        return {
            "kind": "sparse",
            "shape": [int(dim) for dim in value.shape],
            "nnz": int(value.nnz),
        }
    if hasattr(value, "shape"):  # numpy array
        shape = [int(dim) for dim in value.shape]
        size = 1
        for dim in shape:
            size *= dim
        summary = {"kind": "dense", "shape": shape}
        if size <= MAX_INLINE_VALUE_ELEMENTS:
            summary["data"] = value.tolist()
        return summary
    return {"kind": "opaque", "repr": repr(value)[:200]}


def _finite_or_none(value: float) -> Optional[float]:
    """NaN/inf costs (unplannable requests) must not leak into the JSON:
    ``json.dumps`` would emit the spec-invalid ``NaN`` literal that
    standards-strict consumers (``JSON.parse``, ``jq``) refuse to parse."""
    return float(value) if math.isfinite(value) else None


# ---------------------------------------------------------------------------
# Typed request schema
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanRequest:
    """The typed body of ``POST /v1/plan`` and ``POST /v1/pipeline``.

    Field defaults double as wire defaults: a field at its default is
    omitted from the encoded body, and an absent key decodes to the
    default (``execute`` to the endpoint's own default).
    """

    expression: mx.Expr
    name: str = ""
    backend: Optional[str] = None
    execute: bool = True
    #: Tenant-workspace routing: the gateway dispatches the request to this
    #: named workspace (404 when unknown); ``None`` targets the default.
    workspace: Optional[str] = None

    def to_json(self) -> dict:
        """Encode as a request body (defaults omitted)."""
        body: dict = {"expression": expr_to_json(self.expression)}
        if self.name:
            body["name"] = self.name
        if self.backend is not None:
            body["backend"] = self.backend
        if not self.execute:
            body["execute"] = False
        if self.workspace is not None:
            body["workspace"] = self.workspace
        return body

    @classmethod
    def from_json(cls, body: Any, execute_default: bool = True) -> "PlanRequest":
        """Decode and validate one request body (raises :class:`ProtocolError`)."""
        if not isinstance(body, dict):
            raise ProtocolError("request body must be a JSON object")
        if "expression" not in body:
            raise ProtocolError("request body needs an 'expression' field")
        expression = expr_from_json(body["expression"])
        name = body.get("name", "")
        if not isinstance(name, str):
            raise ProtocolError("'name' must be a string")
        backend = body.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ProtocolError("'backend' must be a string")
        execute = body.get("execute", execute_default)
        if not isinstance(execute, bool):
            raise ProtocolError("'execute' must be a boolean")
        workspace = body.get("workspace")
        if workspace is not None and (not isinstance(workspace, str) or not workspace):
            raise ProtocolError("'workspace' must be a non-empty string")
        return cls(
            expression=expression,
            name=name,
            backend=backend,
            execute=execute,
            workspace=workspace,
        )

    def to_service_request(self) -> ServiceRequest:
        return ServiceRequest(
            expression=self.expression,
            name=self.name,
            backend=self.backend,
            execute=self.execute,
            workspace=self.workspace,
        )

    @classmethod
    def from_service_request(cls, request: ServiceRequest) -> "PlanRequest":
        return cls(
            expression=request.expression,
            name=request.name,
            backend=request.backend,
            execute=request.execute,
            workspace=request.workspace,
        )


# ---------------------------------------------------------------------------
# Typed response schema
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseTimings:
    """Per-phase wall-clock seconds of one served request."""

    queue_seconds: float = 0.0
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0

    def to_json(self) -> dict:
        return {f.name: float(getattr(self, f.name)) for f in dataclass_fields(self)}

    @classmethod
    def from_json(cls, payload: Any) -> "PhaseTimings":
        if not isinstance(payload, dict):
            raise ProtocolError(f"'timings' must be an object, got {payload!r}")
        values = {}
        for spec in dataclass_fields(cls):
            raw = payload.get(spec.name, 0.0)
            if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                raise ProtocolError(f"timings.{spec.name} must be a number, got {raw!r}")
            values[spec.name] = float(raw)
        return cls(**values)


@dataclass(frozen=True)
class PlanResponse:
    """The typed response document of the POST endpoints.

    Built from a :class:`~repro.service.service.ServiceResult` on the
    server (:meth:`from_result`) and re-typed from JSON on the client
    (:meth:`from_json`); :meth:`to_json` keys are exactly the field names,
    so the wire format cannot drift from this definition.
    """

    name: str
    fingerprint: str
    plan: str
    changed: bool
    cache_hit: bool
    original_cost: Optional[float]
    best_cost: Optional[float]
    used_views: Tuple[str, ...]
    backend: Optional[str]
    value: Optional[dict]
    failures: Tuple[Tuple[str, str], ...]
    timings: PhaseTimings

    @property
    def ok(self) -> bool:
        """True unless planning or every candidate backend failed.

        Mirrors :attr:`repro.service.service.ServiceResult.ok`: a response
        that executed after backend fallback keeps the skipped candidates
        in ``failures`` but reports the routed ``backend`` — and is ok.
        """
        if any(who == "planner" for who, _ in self.failures):
            return False
        return self.backend is not None or not self.failures

    @classmethod
    def from_result(cls, result: ServiceResult) -> "PlanResponse":
        rewrite = result.rewrite
        return cls(
            name=result.request.name,
            fingerprint=rewrite.fingerprint or result.request.expression.fingerprint(),
            plan=rewrite.best.to_string(),
            changed=rewrite.changed,
            cache_hit=rewrite.cache_hit,
            original_cost=_finite_or_none(rewrite.original_cost),
            best_cost=_finite_or_none(rewrite.best_cost),
            used_views=tuple(rewrite.used_views),
            backend=result.backend,
            value=value_to_json(result.value),
            failures=tuple((str(who), str(why)) for who, why in result.failures),
            timings=PhaseTimings(
                queue_seconds=result.queue_seconds,
                plan_seconds=result.plan_seconds,
                execute_seconds=result.execute_seconds,
                total_seconds=result.total_seconds,
            ),
        )

    def to_json(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in dataclass_fields(self)}
        payload["used_views"] = list(self.used_views)
        payload["failures"] = [[who, why] for who, why in self.failures]
        payload["timings"] = self.timings.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Any) -> "PlanResponse":
        """Re-type a response document (raises :class:`ProtocolError`)."""
        if not isinstance(payload, dict):
            raise ProtocolError(f"response body must be a JSON object, got {payload!r}")
        try:
            failures = tuple(
                (str(who), str(why)) for who, why in payload.get("failures", [])
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed 'failures': {payload.get('failures')!r}") from exc
        used_views = payload.get("used_views", [])
        if not isinstance(used_views, list):
            raise ProtocolError(f"'used_views' must be a list, got {used_views!r}")
        return cls(
            name=str(payload.get("name", "")),
            fingerprint=str(payload.get("fingerprint", "")),
            plan=str(payload.get("plan", "")),
            changed=bool(payload.get("changed", False)),
            cache_hit=bool(payload.get("cache_hit", False)),
            original_cost=payload.get("original_cost"),
            best_cost=payload.get("best_cost"),
            used_views=tuple(str(view) for view in used_views),
            backend=payload.get("backend"),
            value=payload.get("value"),
            failures=failures,
            timings=PhaseTimings.from_json(payload.get("timings", {})),
        )


__all__ = [
    "MAX_EXPR_NODES",
    "MAX_INLINE_VALUE_ELEMENTS",
    "PhaseTimings",
    "PlanRequest",
    "PlanResponse",
    "ProtocolError",
    "expr_from_json",
    "expr_to_json",
    "op_registry",
    "value_to_json",
]
