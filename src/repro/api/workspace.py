"""Named tenant workspaces: versioned (catalog, views, config) bundles.

HADAD pitches *one* lightweight rewriting optimizer any LA/RA/hybrid
workload can sit on top of; serving many workloads side by side therefore
needs the per-workload state — the catalog, the materialized view set, the
planner configuration — bundled as first-class named modules (Ternovska's
lifted-algebra framing of heterogeneous "pieces of information").  That
bundle is a :class:`Workspace`; a :class:`WorkspaceRegistry` holds them by
name, versioned, for one multi-tenant :class:`repro.api.Engine` to serve
concurrently.

* A **Workspace** is an immutable snapshot: ``(name, catalog, views,
  PlannerConfig, estimator)`` plus the registry-assigned ``version``.
  Tenants never share planner state: the engine builds each workspace its
  own session pool and service, and every cache key carries the workspace
  identity (see :class:`repro.service.PlanSessionPool`).
* The **registry** is thread-safe.  :meth:`WorkspaceRegistry.update`
  replaces a bundle and bumps its version — the engine rebuilds that
  workspace's runtime on next access while every other tenant's pooled
  sessions and cached plans stay untouched.
* The legacy single-catalog ``Engine(catalog, ...)`` constructor is a shim
  (:func:`repro._compat.default_workspace_registry`) registering one
  workspace named ``"default"``, so existing code keeps producing
  byte-identical plans.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.delta import CatalogDelta

from repro._compat import DEFAULT_WORKSPACE
from repro.config import PlannerConfig, _coerce
from repro.cost import estimator_name_for
from repro.constraints.views import LAView
from repro.data.catalog import Catalog
from repro.exceptions import ConfigError, UnknownWorkspaceError

#: Workspace names are URL- and label-safe by construction: they appear in
#: gateway paths (``/v1/workspaces/<name>``) and Prometheus label values.
_WORKSPACE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass(frozen=True)
class Workspace:
    """One tenant's bundle: named catalog, view set and planner config.

    Frozen — reconfiguring a tenant goes through
    :meth:`WorkspaceRegistry.update`, which installs a *new* snapshot under
    a bumped version, so a handle resolved before the update keeps planning
    against a consistent bundle.

    Attributes
    ----------
    name:
        The tenant identity (URL- and metrics-label-safe: letters, digits,
        ``._-``, at most 64 characters).
    catalog:
        The workspace's :class:`~repro.data.Catalog` (optional for
        plan-only workspaces).
    views:
        Materialized LA views every session of this workspace plans with.
    config:
        The workspace's :class:`~repro.config.PlannerConfig` (coerced from
        a mapping if given as one); this — not the engine-wide planner
        config — is what the workspace's pooled sessions are built from.
    estimator:
        Optional explicit estimator object; by default the session resolves
        ``config.estimator`` by name through :mod:`repro.cost`.
    version:
        Registry-assigned, starting at 1 and bumped by every update.
    """

    name: str
    catalog: Optional[Catalog] = None
    views: Tuple[LAView, ...] = ()
    config: Optional[Union[PlannerConfig, dict]] = None
    estimator: Optional[object] = None
    version: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _WORKSPACE_NAME.match(self.name):
            raise ConfigError(
                f"workspace name must match {_WORKSPACE_NAME.pattern} "
                f"(URL- and label-safe), got {self.name!r}"
            )
        object.__setattr__(self, "views", tuple(self.views))
        config = self.config
        if config is None:
            config = PlannerConfig()
        else:
            config = _coerce("Workspace", "config", config, PlannerConfig)
        object.__setattr__(self, "config", config)
        if not isinstance(self.version, int) or self.version < 1:
            raise ConfigError(
                f"Workspace.version must be an int >= 1, got {self.version!r}"
            )

    @property
    def catalog_version(self) -> int:
        return self.catalog.version if self.catalog is not None else -1

    @property
    def runtime_key(self) -> str:
        """The pool/cache identity: ``name@v<version>``.

        Including the bundle version means a plan cached before an update
        can never be served after it, even while both runtimes are alive.
        """
        return f"{self.name}@v{self.version}"

    def describe(self) -> dict:
        """JSON-ready summary (what ``GET /v1/workspaces`` serves)."""
        return {
            "name": self.name,
            "version": self.version,
            "catalog_version": self.catalog_version,
            "views": [view.name for view in self.views],
            # One vocabulary for both construction paths: registered names
            # ("naive"/"mnc"/...) whenever the estimator is resolvable,
            # the class name only for unregistered custom objects.
            "estimator": (
                self.config.estimator
                if self.estimator is None
                else estimator_name_for(self.estimator)
                or type(self.estimator).__name__
            ),
        }


class WorkspaceRegistry:
    """Thread-safe, versioned registry of named workspaces.

    One registry backs one multi-tenant :class:`repro.api.Engine`.  The
    ``default_name`` (``"default"`` unless overridden) is where requests
    without an explicit workspace route — the legacy single-catalog
    constructor registers exactly that workspace.
    """

    def __init__(self, default_name: str = DEFAULT_WORKSPACE):
        if not isinstance(default_name, str) or not _WORKSPACE_NAME.match(default_name):
            raise ConfigError(
                f"default workspace name must be URL- and label-safe, "
                f"got {default_name!r}"
            )
        self.default_name = default_name
        self._lock = threading.Lock()
        self._workspaces: Dict[str, Workspace] = {}
        #: Highest version ever assigned per name — survives removal, so a
        #: re-registered name continues the sequence instead of restarting
        #: at 1 (runtime identities like ``name@v3`` never repeat).
        self._last_versions: Dict[str, int] = {}
        #: Recent ``(from_version, to_version, delta)`` transitions per
        #: name, bounded — enough for followers (planner workers) to catch
        #: up incrementally; a follower further behind than the journal
        #: falls back to a full runtime rebuild.
        self._delta_journal: Dict[str, Deque[Tuple[int, int, "CatalogDelta"]]] = {}

    #: Journal depth per workspace; deltas are small (metadata only), but a
    #: follower that lags this far behind should rebuild anyway.
    DELTA_JOURNAL_LIMIT = 32

    # ------------------------------------------------------------------ writes
    def register(
        self,
        name: str,
        catalog: Optional[Catalog] = None,
        views: Sequence[LAView] = (),
        config: Optional[Union[PlannerConfig, dict]] = None,
        estimator: Optional[object] = None,
        replace_existing: bool = False,
    ) -> Workspace:
        """Register a workspace bundle under ``name``.

        The assigned version continues the name's historical sequence
        (a name first seen gets version 1; one that was removed and
        re-registered does *not* restart — its old runtime identities are
        never reused).  Re-registering a taken name raises
        :class:`ConfigError` unless ``replace_existing=True``, in which
        case the bundle is replaced and the version bumped — exactly
        :meth:`update` semantics.
        """
        return self.add(
            Workspace(
                name=name,
                catalog=catalog,
                views=tuple(views),
                config=config,
                estimator=estimator,
            ),
            replace_existing=replace_existing,
        )

    def add(self, workspace: Workspace, replace_existing: bool = False) -> Workspace:
        """Add a pre-built :class:`Workspace` (its version is re-assigned)."""
        with self._lock:
            prior = self._workspaces.get(workspace.name)
            if prior is not None and not replace_existing:
                raise ConfigError(
                    f"workspace {workspace.name!r} is already registered; "
                    f"use update() or replace_existing=True"
                )
            version = self._last_versions.get(workspace.name, 0) + 1
            workspace = replace(workspace, version=version)
            self._workspaces[workspace.name] = workspace
            self._last_versions[workspace.name] = version
            # A wholesale (re)registration is not expressible as a delta;
            # drop the name's journal so followers rebuild instead of
            # replaying across the discontinuity.
            self._delta_journal.pop(workspace.name, None)
            return workspace

    def update(self, name: str, **changes) -> Workspace:
        """Replace fields of an existing bundle, bumping its version.

        ``changes`` may set ``catalog``, ``views``, ``config`` and
        ``estimator``.  The engine notices the version bump on next access
        and rebuilds that workspace's runtime (pool, sessions, cached
        plans); other workspaces are untouched.
        """
        allowed = {"catalog", "views", "config", "estimator"}
        unknown = sorted(set(changes) - allowed)
        if unknown:
            raise ConfigError(
                f"WorkspaceRegistry.update got unknown field(s) {unknown}; "
                f"updatable fields are {sorted(allowed)}"
            )
        with self._lock:
            prior = self._get_locked(name)
            version = self._last_versions.get(name, prior.version) + 1
            updated = replace(prior, version=version, **changes)
            self._workspaces[name] = updated
            self._last_versions[name] = version
            self._delta_journal.pop(name, None)
            return updated

    def apply_delta(self, name: str, delta: "CatalogDelta") -> Workspace:
        """Apply a :class:`~repro.catalog.delta.CatalogDelta` to a workspace.

        The delta mutates the bundle's catalog in place (relation ops) and
        derives the new view tuple (view ops); the bundle version is bumped
        and a new snapshot installed, exactly like :meth:`update` — but the
        transition is additionally journaled, so serving layers
        (:meth:`repro.api.Engine.apply_delta`, the worker supervisor) can
        revalidate warm plan caches selectively instead of rebuilding.

        Validation happens against the pre-state before any mutation; an
        invalid delta raises without changing the workspace.
        """
        if not len(delta.ops):
            raise ConfigError("apply_delta needs a delta with at least one op")
        with self._lock:
            prior = self._get_locked(name)
            if delta.needs_catalog and prior.catalog is None:
                raise ConfigError(
                    f"workspace {name!r} has no catalog; this delta contains "
                    f"relation ops"
                )
            views = delta.apply(prior.catalog, prior.views)
            version = self._last_versions.get(name, prior.version) + 1
            updated = replace(prior, version=version, views=views)
            self._workspaces[name] = updated
            self._last_versions[name] = version
            journal = self._delta_journal.setdefault(
                name, deque(maxlen=self.DELTA_JOURNAL_LIMIT)
            )
            journal.append((prior.version, version, delta))
            return updated

    def delta_chain(
        self, name: str, from_version: int, to_version: int
    ) -> Optional[List["CatalogDelta"]]:
        """The journaled deltas taking ``name`` from one version to another.

        Returns the contiguous list of deltas covering exactly
        ``from_version → to_version``, oldest first; ``None`` when the
        journal cannot bridge the gap (a non-delta update intervened, the
        follower is too far behind, or the versions are unknown) — the
        caller should fall back to a full rebuild.  An empty list when the
        versions are equal.
        """
        if from_version == to_version:
            return []
        if from_version > to_version:
            return None
        with self._lock:
            journal = self._delta_journal.get(name)
            if not journal:
                return None
            chain: List["CatalogDelta"] = []
            cursor = from_version
            for entry_from, entry_to, delta in journal:
                if entry_to <= cursor:
                    continue
                if entry_from != cursor:
                    return None
                chain.append(delta)
                cursor = entry_to
                if cursor == to_version:
                    return chain
        return None

    def remove(self, name: str) -> Workspace:
        """Drop a workspace (its engine runtime is reaped on next access)."""
        with self._lock:
            workspace = self._get_locked(name)
            del self._workspaces[name]
            self._delta_journal.pop(name, None)
            return workspace

    # ------------------------------------------------------------------ reads
    def _get_locked(self, name: str) -> Workspace:
        workspace = self._workspaces.get(name)
        if workspace is None:
            known = ", ".join(sorted(self._workspaces)) or "<none>"
            raise UnknownWorkspaceError(
                f"unknown workspace {name!r}; registered workspaces: {known}"
            )
        return workspace

    def get(self, name: str) -> Workspace:
        """The current bundle for ``name`` (:class:`UnknownWorkspaceError`
        — listing the registered names — when absent)."""
        with self._lock:
            return self._get_locked(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._workspaces))

    def describe(self) -> List[dict]:
        """JSON-ready summaries of every workspace, sorted by name."""
        with self._lock:
            return [
                self._workspaces[name].describe()
                for name in sorted(self._workspaces)
            ]

    @property
    def has_default(self) -> bool:
        with self._lock:
            return self.default_name in self._workspaces

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._workspaces

    def __len__(self) -> int:
        with self._lock:
            return len(self._workspaces)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


__all__ = ["DEFAULT_WORKSPACE", "Workspace", "WorkspaceRegistry"]
