"""``repro.api`` — the single typed entry point over the whole stack.

One :class:`Engine` replaces the four historical front doors
(``HadadOptimizer``, ``HybridOptimizer``, ``AnalyticsService``,
``AnalyticsGateway``), which remain as behavior-preserving deprecation
shims — and serves many named tenant **workspaces** side by side: a
:class:`WorkspaceRegistry` holds versioned (catalog, views,
``PlannerConfig``) bundles, ``engine.workspace(name)`` returns a typed
:class:`WorkspaceHandle` over the full rewrite/submit/execute ladder, and
the gateway routes per-request ``workspace`` fields with per-tenant quotas
and metrics labels.  Options travel as frozen, validated dataclasses
(:class:`~repro.config.PlannerConfig` / :class:`~repro.config.ServiceConfig`
/ :class:`~repro.config.GatewayConfig`, composed by
:class:`~repro.config.EngineConfig`); execution substrates are declared to
a capability-negotiating :class:`~repro.backends.registry.BackendRegistry`;
and the gateway wire format is generated from the typed
:class:`~repro.api.schema.PlanRequest` / :class:`~repro.api.schema.PlanResponse`
schema shared with :mod:`repro.server.protocol`.

Quick start::

    from repro.api import Engine, EngineConfig

    engine = Engine(catalog, config=EngineConfig(planner={"max_rounds": 4}))
    result = engine.rewrite(expr)             # plan (pooled, cached)
    routed = engine.execute(result)           # run it on a capable backend
    answers = engine.submit_many(batch)       # concurrent service path
    gateway = await engine.serve()            # asyncio HTTP front door

See ``docs/api.md`` for the full reference and the migration guide from
the legacy entry points.
"""

from repro.backends.registry import BackendCapabilities, BackendRegistry
from repro.config import (
    DEFAULT_BACKENDS,
    EngineConfig,
    GatewayConfig,
    PlannerConfig,
    ServiceConfig,
)
from repro.exceptions import ConfigError, UnknownWorkspaceError
from repro.api.engine import Engine, WorkspaceHandle
from repro.api.workspace import DEFAULT_WORKSPACE, Workspace, WorkspaceRegistry
from repro.api.schema import (
    PhaseTimings,
    PlanRequest,
    PlanResponse,
    ProtocolError,
    expr_from_json,
    expr_to_json,
)

__all__ = [
    "BackendCapabilities",
    "BackendRegistry",
    "ConfigError",
    "DEFAULT_BACKENDS",
    "DEFAULT_WORKSPACE",
    "Engine",
    "EngineConfig",
    "GatewayConfig",
    "PhaseTimings",
    "PlanRequest",
    "PlanResponse",
    "PlannerConfig",
    "ProtocolError",
    "ServiceConfig",
    "UnknownWorkspaceError",
    "Workspace",
    "WorkspaceHandle",
    "WorkspaceRegistry",
    "expr_from_json",
    "expr_to_json",
]
