"""The staged planner: HADAD's rewrite pipeline as a reusable subsystem.

The planner splits the former monolithic ``HadadOptimizer.rewrite`` into

* a staged pipeline — :class:`~repro.planner.stages.EncodeStage` →
  :class:`~repro.planner.stages.SaturateStage` →
  :class:`~repro.planner.stages.AnnotateStage` →
  :class:`~repro.planner.stages.ExtractStage` →
  :class:`~repro.planner.stages.PostOptStage` — each timed per rewrite;
* a :class:`~repro.planner.session.PlanSession` owning the long-lived state:
  the constraint set compiled once into a
  :class:`~repro.chase.program.ConstraintProgram`, the indexed
  :class:`~repro.chase.saturation.SaturationEngine`, and a
  fingerprint-keyed :class:`~repro.planner.cache.RewriteCache`;
* batch planning (``rewrite_all``) that dedupes structurally identical
  expressions before doing any work.

``HadadOptimizer`` remains the stable public entry point, now a thin façade
over a session.
"""

from repro.planner.cache import RewriteCache
from repro.planner.session import PlanSession
from repro.planner.stages import (
    DEFAULT_STAGES,
    AnnotateStage,
    EncodeStage,
    ExtractStage,
    PlanContext,
    PostOptStage,
    SaturateStage,
    Stage,
)

__all__ = [
    "PlanSession",
    "RewriteCache",
    "PlanContext",
    "Stage",
    "EncodeStage",
    "SaturateStage",
    "AnnotateStage",
    "ExtractStage",
    "PostOptStage",
    "DEFAULT_STAGES",
]
