"""Fingerprint-keyed LRU cache of rewrite results.

HADAD's pitch is that rewriting overhead stays negligible next to execution
(§9.1.3); for a long-lived optimizer service the cheapest rewrite is the one
never recomputed.  Benchmark view sweeps and hybrid workloads rewrite the
same pipeline shapes over and over, so a
:class:`~repro.planner.session.PlanSession` memoises finished
:class:`~repro.core.result.RewriteResult` objects under a key combining

* the **structural fingerprint** of the input expression
  (:meth:`repro.lang.matrix_expr.Expr.fingerprint`),
* the **view-set key** — names + definition fingerprints of the session's
  views and its normalized-matrix declarations, and
* the **catalog version** — any registration/drop bumps it, invalidating
  every plan computed against the stale contents.

Entries are immutable: expressions are value objects and the session hands
out shallow copies of the result, so sharing across callers is safe.

The cache itself is **not** thread-safe (the LRU reorder and the counters
race under concurrent access); callers that share one across threads must
serialize access, as :class:`repro.service.PlanSessionPool` does for its
pool-level shared result cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator, List, Optional, Tuple

from repro.core.result import RewriteResult

CacheKey = Tuple[Hashable, ...]


class RewriteCache:
    """A bounded LRU mapping of plan keys to finished rewrite results."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("RewriteCache capacity must be positive")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[CacheKey, RewriteResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: CacheKey) -> Optional[RewriteResult]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, result: RewriteResult) -> List[CacheKey]:
        """Store ``result``; returns the keys LRU-evicted to make room."""
        self._entries[key] = result
        self._entries.move_to_end(key)
        evicted: List[CacheKey] = []
        while len(self._entries) > self.capacity:
            dropped, _ = self._entries.popitem(last=False)
            evicted.append(dropped)
            self.evictions += 1
        return evicted

    def pop(self, key: CacheKey) -> Optional[RewriteResult]:
        """Remove and return the entry under ``key`` (None when absent)."""
        return self._entries.pop(key, None)

    def items(self) -> Iterator[Tuple[CacheKey, RewriteResult]]:
        """Snapshot of the live entries, LRU-oldest first."""
        return iter(list(self._entries.items()))

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters for reports and benchmarks."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


__all__ = ["RewriteCache", "CacheKey"]
