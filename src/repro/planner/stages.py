"""The staged planner pipeline: Encode → Saturate → Annotate → Extract → PostOpt.

Each stage is a small, stateless object transforming a :class:`PlanContext`;
the long-lived state (catalog, compiled constraint program, saturation
engine, rewrite cache) lives on the owning
:class:`~repro.planner.session.PlanSession` and is only *read* here.  The
split buys three things over the former monolithic ``rewrite``:

* per-stage wall-clock timings on every
  :class:`~repro.core.result.RewriteResult` (the paper's RW_find becomes
  inspectable instead of a single number);
* reuse — the compiled constraints and engine are built once per session,
  not once per rewrite;
* a seam for future work: stages can be swapped (e.g. a sharded saturate or
  an async annotate) without touching the session API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.chase.saturation import CostThresholdPruner, SaturationResult
from repro.core.extraction import (
    enumerate_equivalent_expressions,
    extract_best_expression,
)
from repro.core.matchain import optimize_matmul_chains
from repro.cost.model import annotate_instance_classes, expression_cost
from repro.exceptions import RewriteError, UnknownMatrixError
from repro.lang import matrix_expr as mx
from repro.lang.visitor import collect_refs
from repro.vrem.encoder import LAEncoder
from repro.vrem.instance import VremInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.planner.session import PlanSession

#: Threshold slack and floor shared by the initial bound and tightening
#: (Example 7.2): keep same-cost alternatives around for tie-breaking and
#: never prune on toy-sized instances.
THRESHOLD_SLACK = 1.5
THRESHOLD_FLOOR = 1024.0


@dataclass
class PlanContext:
    """Mutable per-rewrite state threaded through the stages."""

    session: "PlanSession"
    expr: mx.Expr
    instance: Optional[VremInstance] = None
    root: Optional[int] = None
    original_cost: float = float("inf")
    pruner: Optional[CostThresholdPruner] = None
    saturation: Optional[SaturationResult] = None
    infos: Optional[Dict] = None
    best_expr: Optional[mx.Expr] = None
    best_cost: float = float("inf")
    alternatives: List[Tuple[mx.Expr, float]] = field(default_factory=list)
    used_views: List[str] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    # Work salvaged from the saturate stage's last tighten pass: when the
    # instance did not change afterwards (the usual case — the final round
    # is the one that finds nothing new), annotate/extract reuse it instead
    # of recomputing the identical result.
    tighten_infos: Optional[Dict] = None
    tighten_best: Optional[mx.Expr] = None
    tighten_version: Optional[Tuple[int, int]] = None

    def instance_version(self) -> Tuple[int, int]:
        return (self.instance.version, self.instance.shape_version)

    def cost_or_inf(self, expr: mx.Expr) -> float:
        try:
            return expression_cost(expr, self.session.catalog, self.session.estimator)
        except UnknownMatrixError:
            return float("inf")


class Stage:
    """Base class: a named transformation of the plan context."""

    name = "stage"

    def run(self, ctx: PlanContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class EncodeStage(Stage):
    """Cost the original expression and encode it on the VREM schema."""

    name = "encode"

    def run(self, ctx: PlanContext) -> None:
        session = ctx.session
        ctx.original_cost = ctx.cost_or_inf(ctx.expr)
        ctx.instance = VremInstance()
        encoder = LAEncoder(ctx.instance, session.catalog)
        ctx.root = encoder.encode(ctx.expr)
        self._register_normalized_matrices(session, encoder, ctx.expr)

    @staticmethod
    def _register_normalized_matrices(
        session: "PlanSession", encoder: LAEncoder, expr: mx.Expr
    ) -> None:
        """Add ``factorized`` facts for declared normalized matrices."""
        if not session.normalized_matrices:
            return
        referenced = collect_refs(expr)
        for matrix_name, (s_name, k_name, r_name) in session.normalized_matrices.items():
            if matrix_name not in referenced:
                continue
            m_cid = encoder.encode(mx.MatrixRef(matrix_name))
            s_cid = encoder.encode(mx.MatrixRef(s_name))
            k_cid = encoder.encode(mx.MatrixRef(k_name))
            r_cid = encoder.encode(mx.MatrixRef(r_name))
            encoder.instance.add_atom(
                "factorized", (m_cid, s_cid, k_cid, r_cid), ("normalized-matrix",)
            )


class SaturateStage(Stage):
    """Chase the encoding with the session's compiled constraint program."""

    name = "saturate"

    def run(self, ctx: PlanContext) -> None:
        session = ctx.session
        if session.prune and ctx.original_cost != float("inf"):
            # The threshold bounds the size of any single new intermediate: an
            # intermediate larger than the entire original plan's cost can
            # never appear in a better plan (Example 7.2).
            ctx.pruner = CostThresholdPruner(
                max(ctx.original_cost * THRESHOLD_SLACK, THRESHOLD_FLOOR)
            )
        tighten = self._tighten_callback(ctx) if (
            ctx.pruner is not None and session.tighten_thresholds
        ) else None
        ctx.saturation = session.engine.saturate(ctx.instance, ctx.pruner, tighten)

    @staticmethod
    def _tighten_callback(ctx: PlanContext):
        """Bound for the next rounds: cost of the best rewriting found so far."""

        def bound(instance: VremInstance) -> Optional[float]:
            session = ctx.session
            infos = annotate_instance_classes(instance, session.catalog, session.estimator)
            ctx.tighten_infos = infos
            ctx.tighten_version = (instance.version, instance.shape_version)
            ctx.tighten_best = None
            try:
                best, cost = extract_best_expression(instance, ctx.root, infos)
            except RewriteError:
                return None
            ctx.tighten_best = best
            if cost == float("inf"):
                return None
            return max(cost * THRESHOLD_SLACK, THRESHOLD_FLOOR)

        return bound


class AnnotateStage(Stage):
    """Per-class (shape, nnz) estimates of the saturated instance."""

    name = "annotate"

    def run(self, ctx: PlanContext) -> None:
        if ctx.tighten_infos is not None and ctx.tighten_version == ctx.instance_version():
            ctx.infos = ctx.tighten_infos
            return
        ctx.infos = annotate_instance_classes(
            ctx.instance, ctx.session.catalog, ctx.session.estimator
        )


class ExtractStage(Stage):
    """Cheapest derivation of the root, plus bounded alternatives."""

    name = "extract"

    def run(self, ctx: PlanContext) -> None:
        if (
            ctx.tighten_best is not None
            and ctx.tighten_version == ctx.instance_version()
            and ctx.infos is ctx.tighten_infos
        ):
            ctx.best_expr = ctx.tighten_best
        else:
            try:
                ctx.best_expr, _ = extract_best_expression(ctx.instance, ctx.root, ctx.infos)
            except RewriteError:
                ctx.best_expr = ctx.expr
        ctx.alternatives = [
            (alt, ctx.cost_or_inf(alt))
            for alt, _ in enumerate_equivalent_expressions(
                ctx.instance, ctx.root, ctx.infos, limit=ctx.session.alternatives_limit
            )
        ]


class PostOptStage(Stage):
    """Syntactic post-optimization and final cost accounting."""

    name = "postopt"

    def run(self, ctx: PlanContext) -> None:
        session = ctx.session
        best = ctx.best_expr
        if session.reorder_matmul_chains and session.catalog is not None:
            best = optimize_matmul_chains(best, session.catalog)
        best_cost = ctx.cost_or_inf(best)
        # Never return something we estimate to be worse than the original.
        if best_cost > ctx.original_cost:
            best, best_cost = ctx.expr, ctx.original_cost
        ctx.best_expr, ctx.best_cost = best, best_cost
        ctx.alternatives.sort(key=lambda pair: pair[1])
        view_names = {view.name for view in session.views}
        ctx.used_views = sorted(
            name for name in collect_refs(best) if name in view_names
        )


#: The canonical stage order of a plan session.
DEFAULT_STAGES = (
    EncodeStage(),
    SaturateStage(),
    AnnotateStage(),
    ExtractStage(),
    PostOptStage(),
)

__all__ = [
    "PlanContext",
    "Stage",
    "EncodeStage",
    "SaturateStage",
    "AnnotateStage",
    "ExtractStage",
    "PostOptStage",
    "DEFAULT_STAGES",
    "THRESHOLD_SLACK",
    "THRESHOLD_FLOOR",
]
