"""Plan sessions: long-lived, cached drivers of the staged planner pipeline.

A :class:`PlanSession` owns everything that survives between rewrites —
catalog and estimator references, the constraint set compiled once into a
:class:`~repro.chase.program.ConstraintProgram`, the
:class:`~repro.chase.saturation.SaturationEngine` built on top of it, and a
fingerprint-keyed :class:`~repro.planner.cache.RewriteCache` — and runs the
per-rewrite stages of :mod:`repro.planner.stages` over it.

:class:`repro.core.optimizer.HadadOptimizer` is a thin façade over this
class; new code (the hybrid optimizer, the benchmark harness, services)
should talk to the session directly to benefit from caching and batch
deduplication.

Thread safety
-------------
A session is **not** thread-safe: a rewrite mutates the saturation engine's
working state, the LRU order and counters of the :class:`RewriteCache`, and
the reconfiguration methods (``set_views`` / ``set_budgets`` / …) swap whole
components.  One session must therefore be driven by one thread at a time.
Concurrent callers should check sessions out of a
:class:`repro.service.PlanSessionPool`, which keeps each session exclusive
to its holder and adds a lock-guarded, single-flight shared result cache on
top.  The only state deliberately safe to share across threads is the
expression-side ``Expr.fingerprint()`` memo (idempotent writes of an
identical value) and finished :class:`RewriteResult` objects, because every
result crossing the session boundary is a private copy
(:meth:`RewriteResult.copy`).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.footprint import PlanFootprint
from repro.chase.program import ConstraintProgram
from repro.chase.saturation import SaturationEngine
from repro.config import PlannerConfig
from repro.constraints import default_constraints
from repro.constraints.core import Constraint
from repro.constraints.views import LAView, constraints_for_views
from repro.core.result import RewriteResult
from repro.cost import estimator_name_for, resolve_estimator
from repro.data.catalog import Catalog
from repro.exceptions import UnknownMatrixError
from repro.lang import matrix_expr as mx
from repro.planner.cache import CacheKey, RewriteCache
from repro.planner.stages import DEFAULT_STAGES, PlanContext, Stage


class PlanSession:
    """Reusable planning state plus the staged rewrite pipeline."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        views: Sequence[LAView] = (),
        estimator=None,
        constraints: Optional[Sequence[Constraint]] = None,
        include_decompositions: bool = False,
        include_systemml_rules: bool = True,
        include_morpheus_rules: bool = False,
        include_view_voi: bool = True,
        max_rounds: int = 4,
        max_atoms: int = 2_500,
        max_classes: int = 1_200,
        prune: bool = True,
        reorder_matmul_chains: bool = True,
        alternatives_limit: int = 6,
        normalized_matrices: Optional[Dict[str, Tuple[str, str, str]]] = None,
        cache_size: int = 256,
        enable_cache: bool = True,
        use_constraint_index: bool = True,
        tighten_thresholds: bool = True,
        chase_workers: int = 1,
        verify_constraints: str = "off",
        stages: Optional[Sequence[Stage]] = None,
        config: Optional[PlannerConfig] = None,
    ):
        # Options always travel as one validated, frozen PlannerConfig —
        # the legacy keyword arguments are folded into one (and validated
        # by it) when no config is given, so both construction paths share
        # a single source of truth.  ``config``, when provided, wins.
        if config is None:
            config = PlannerConfig(
                include_decompositions=include_decompositions,
                include_systemml_rules=include_systemml_rules,
                include_morpheus_rules=include_morpheus_rules,
                include_view_voi=include_view_voi,
                max_rounds=max_rounds,
                max_atoms=max_atoms,
                max_classes=max_classes,
                prune=prune,
                reorder_matmul_chains=reorder_matmul_chains,
                alternatives_limit=alternatives_limit,
                normalized_matrices=normalized_matrices or {},
                cache_size=cache_size,
                enable_cache=enable_cache,
                use_constraint_index=use_constraint_index,
                tighten_thresholds=tighten_thresholds,
                chase_workers=chase_workers,
                verify_constraints=verify_constraints,
            )
        options = config.session_kwargs()
        include_decompositions = options["include_decompositions"]
        include_systemml_rules = options["include_systemml_rules"]
        include_morpheus_rules = options["include_morpheus_rules"]
        include_view_voi = options["include_view_voi"]
        max_rounds = options["max_rounds"]
        max_atoms = options["max_atoms"]
        max_classes = options["max_classes"]
        prune = options["prune"]
        reorder_matmul_chains = options["reorder_matmul_chains"]
        alternatives_limit = options["alternatives_limit"]
        cache_size = options["cache_size"]
        enable_cache = options["enable_cache"]
        use_constraint_index = options["use_constraint_index"]
        tighten_thresholds = options["tighten_thresholds"]
        chase_workers = options["chase_workers"]
        #: Static-verification mode ("off" | "warn" | "strict"); consulted
        #: again whenever ``set_views`` recompiles the program.
        self.verify_constraints = options["verify_constraints"]

        self.catalog = catalog
        self.views = list(views)
        #: The declared estimator name.  An explicit estimator *object*
        #: wins over the config name (legacy construction path); otherwise
        #: the name is resolved through the registry in :mod:`repro.cost`
        #: — an unknown name raises ConfigError listing the valid choices,
        #: here at construction rather than on the first rewrite.
        self._declared_estimator_name = options["estimator"]
        if estimator is None:
            estimator = resolve_estimator(self._declared_estimator_name)
        self.estimator = estimator
        # Remember the constructor knobs so façades can clone the session
        # (``with_views``) without silently dropping options.
        self.include_decompositions = include_decompositions
        self.include_systemml_rules = include_systemml_rules
        self.include_morpheus_rules = include_morpheus_rules
        self.include_view_voi = include_view_voi
        self.normalized_matrices = dict(options["normalized_matrices"])
        if constraints is None:
            constraints = default_constraints(
                include_decompositions=include_decompositions,
                include_systemml=include_systemml_rules,
                include_morpheus=include_morpheus_rules or bool(self.normalized_matrices),
            )
        self.base_constraints = list(constraints)
        self._register_view_metadata()
        self.view_constraints = constraints_for_views(
            self.views, catalog, include_voi=include_view_voi
        )
        #: Compiled once; every rewrite reuses the indexed program.
        self.program = ConstraintProgram(
            self.base_constraints + self.view_constraints, validate=False
        )
        self._verify_program()
        self.max_rounds = max_rounds
        self.max_atoms = max_atoms
        self.max_classes = max_classes
        self.prune = prune
        self.reorder_matmul_chains = reorder_matmul_chains
        self.alternatives_limit = alternatives_limit
        self.tighten_thresholds = tighten_thresholds
        self.engine = SaturationEngine(
            self.program,
            max_rounds=max_rounds,
            max_atoms=max_atoms,
            max_classes=max_classes,
            use_index=use_constraint_index,
            chase_workers=chase_workers,
        )
        self.stages: Tuple[Stage, ...] = tuple(stages) if stages is not None else DEFAULT_STAGES
        self.enable_cache = enable_cache
        self.cache = RewriteCache(cache_size)
        #: The construction-time half of :meth:`options_key`, frozen here:
        #: these options are baked into the compiled constraint program and
        #: cannot take effect through attribute mutation, so the cache key
        #: deliberately uses the values the program was *built* with.
        self._constructed_options_key: Tuple = (
            include_decompositions,
            include_systemml_rules,
            include_morpheus_rules,
            include_view_voi,
            use_constraint_index,
            chase_workers,
        )

    # ------------------------------------------------------------------ setup
    def _verify_program(self) -> None:
        """Statically verify the compiled program per ``verify_constraints``.

        Only **error-severity** findings (unsafe EGDs, malformed atoms,
        broken trigger metadata, never-matching commutative premises) act
        here: ``"warn"`` surfaces them as a :class:`UserWarning`,
        ``"strict"`` raises
        :class:`~repro.exceptions.ConstraintVerificationError`.  The
        warning-tier findings the shipped theory triggers by design (weak
        acyclicity of the bidirectional LA rules) are an audit concern for
        the ``python -m repro.analysis`` CLI, not a construction gate —
        which is also what keeps plans byte-identical across all modes:
        verification reads the program, never rewrites it.
        """
        mode = self.verify_constraints
        if mode == "off":
            return
        from repro.analysis.findings import ERROR

        errors = [f for f in self.program.verify("session") if f.severity == ERROR]
        if not errors:
            return
        rendered = "; ".join(f.render() for f in errors)
        if mode == "strict":
            from repro.exceptions import ConstraintVerificationError

            raise ConstraintVerificationError(
                f"constraint program failed static verification: {rendered}"
            )
        import warnings

        warnings.warn(
            f"constraint program has static-verification errors: {rendered}",
            UserWarning,
            stacklevel=3,
        )

    def _register_view_metadata(self) -> None:
        """Make every view's stored result costable.

        A materialized view is a file on disk accompanied by metadata
        (dimensions, nnz); if the catalog does not already know the view's
        storage name, metadata derived from the view definition is registered
        so that rewritings referencing the view can be costed (and so that the
        harness can later materialise the values under the same name).
        """
        if self.catalog is None:
            return
        from repro.cost.model import annotate_expression
        from repro.data.matrix import MatrixMeta

        for view in self.views:
            if self.catalog.has_matrix(view.name):
                continue
            try:
                info = annotate_expression(view.definition, self.catalog, self.estimator)[
                    view.definition
                ]
            except UnknownMatrixError:
                continue
            if info.shape is None:
                continue
            self.catalog.register_metadata(
                MatrixMeta(
                    name=view.name,
                    rows=info.shape[0],
                    cols=info.shape[1],
                    nnz=int(round(info.nnz)),
                )
            )

    def _compute_viewset_key(self) -> Tuple:
        # Recomputed on every cache probe (it is cheap: expression
        # fingerprints are cached on the nodes) so that in-place mutation of
        # ``views`` or ``normalized_matrices`` changes the key rather than
        # serving plans computed under the old declarations.
        views = tuple(
            sorted((view.name, view.definition.fingerprint()) for view in self.views)
        )
        normalized = tuple(sorted(self.normalized_matrices.items()))
        return (views, normalized)

    # ------------------------------------------------------------------ reconfiguration
    def set_views(self, views: Sequence[LAView]) -> None:
        """Swap the session's view set in place.

        Re-derives the view constraints, recompiles the constraint program,
        rebuilds the engine and drops every cached plan — the in-place
        equivalent of :meth:`with_views`.
        """
        self.views = list(views)
        self._register_view_metadata()
        self.view_constraints = constraints_for_views(
            self.views, self.catalog, include_voi=self.include_view_voi
        )
        self.program = ConstraintProgram(
            self.base_constraints + self.view_constraints, validate=False
        )
        self._verify_program()
        self.engine = SaturationEngine(
            self.program,
            max_rounds=self.max_rounds,
            max_atoms=self.max_atoms,
            max_classes=self.max_classes,
            use_index=self.engine.use_index,
            chase_workers=self.engine.chase_workers,
        )
        self.invalidate()

    def set_normalized_matrices(
        self, normalized: Optional[Dict[str, Tuple[str, str, str]]]
    ) -> None:
        """Swap the normalized-matrix declarations in place.

        The declarations are part of every cache key, so new ones take
        effect immediately; cached plans are dropped for hygiene.  Note
        that, as at construction time, the Morpheus constraint set itself is
        not re-derived.
        """
        self.normalized_matrices = dict(normalized or {})
        self.invalidate()

    def set_budgets(
        self,
        max_rounds: Optional[int] = None,
        max_atoms: Optional[int] = None,
        max_classes: Optional[int] = None,
    ) -> None:
        """Adjust the saturation budgets (cached plans are dropped)."""
        if max_rounds is not None:
            self.max_rounds = self.engine.max_rounds = max_rounds
        if max_atoms is not None:
            self.max_atoms = self.engine.max_atoms = max_atoms
        if max_classes is not None:
            self.max_classes = self.engine.max_classes = max_classes
        self.invalidate()

    # ------------------------------------------------------------------ configuration view
    @property
    def estimator_name(self) -> str:
        """The registered name of the live estimator.

        Reverse-resolved from the registry so that swapping the estimator
        object (the legacy façade setter) is reflected; estimator objects of
        unregistered types keep the declared config name.
        """
        return estimator_name_for(self.estimator) or self._declared_estimator_name

    def current_config(self) -> PlannerConfig:
        """The session's *live* options as a frozen :class:`PlannerConfig`.

        Recomputed from the current attribute values, so post-construction
        mutation (the legacy façade setters, or direct attribute writes) is
        reflected — and validated: an invalid mutated value surfaces as a
        :class:`~repro.exceptions.ConfigError` when the snapshot is taken
        (the façade's ``config`` property, :meth:`with_views` clones).
        Note that the rule-set flags (``include_*``) are construction-time:
        the snapshot reports the attribute values, but changing the rule
        set requires a new session (the compiled constraint program is not
        re-derived by mutation).
        """
        return PlannerConfig(
            include_decompositions=self.include_decompositions,
            include_systemml_rules=self.include_systemml_rules,
            include_morpheus_rules=self.include_morpheus_rules,
            include_view_voi=self.include_view_voi,
            max_rounds=self.max_rounds,
            max_atoms=self.max_atoms,
            max_classes=self.max_classes,
            prune=self.prune,
            reorder_matmul_chains=self.reorder_matmul_chains,
            alternatives_limit=self.alternatives_limit,
            normalized_matrices=self.normalized_matrices,
            cache_size=self.cache.capacity,
            enable_cache=self.enable_cache,
            use_constraint_index=self.engine.use_index,
            tighten_thresholds=self.tighten_thresholds,
            chase_workers=self.engine.chase_workers,
            estimator=self.estimator_name,
            verify_constraints=self.verify_constraints,
        )

    @property
    def config(self) -> PlannerConfig:
        return self.current_config()

    # ------------------------------------------------------------------ cache
    def options_key(self) -> Tuple:
        """The plan-affecting options component of every cache key.

        Two halves, matching how the options actually act:

        * the **constructed** half — the rule-set flags baked into the
          compiled constraint program at construction (mutating those
          attributes cannot take effect, so the key keeps the built-with
          values and neither mislabels plans nor re-keys spuriously);
        * the **tunable** half — the budgets, pruning, chain-reordering and
          alternatives options plus the estimator's type, all read live by
          every rewrite.  Mutating one of these — through the legacy façade
          setters or by assigning session attributes directly — both takes
          effect on the next rewrite *and* re-keys it, so plans computed
          under the old options can never be served for the new ones.

        Kept cheap deliberately (a plain attribute tuple, no validation):
        this runs on every cache probe of the serving hot path.
        """
        return self._constructed_options_key + (
            self.max_rounds,
            self.max_atoms,
            self.max_classes,
            self.prune,
            self.tighten_thresholds,
            self.reorder_matmul_chains,
            self.alternatives_limit,
            type(self.estimator).__name__,
        )

    def cache_key(self, expr: mx.Expr) -> CacheKey:
        """(expression fingerprint, view-set key, catalog version, options).

        The options component is recomputed from the live session state on
        every probe — see :meth:`options_key` for exactly which options
        re-key on mutation (views and normalized-matrix declarations are
        covered by the view-set key, the catalog by its version).
        """
        catalog_version = self.catalog.version if self.catalog is not None else -1
        return (
            expr.fingerprint(),
            self._compute_viewset_key(),
            catalog_version,
            self.options_key(),
        )

    def invalidate(self) -> None:
        """Drop every cached plan (catalog changes do this implicitly)."""
        self.cache.clear()

    # ------------------------------------------------------------------ rewriting
    @staticmethod
    def _copy_result(result: RewriteResult, **overrides) -> RewriteResult:
        """A handed-out copy whose mutable containers are private.

        Cached entries must stay pristine, so every result crossing the
        session boundary gets its own lists/dicts (including the saturation
        stats); expressions are immutable value objects and can be shared.
        """
        return result.copy(**overrides)

    def rewrite(self, expr: mx.Expr) -> RewriteResult:
        """Find the minimum-cost equivalent of ``expr`` (cached)."""
        start = time.perf_counter()
        key = self.cache_key(expr) if self.enable_cache else None
        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return self._copy_result(
                    cached,
                    rewrite_seconds=time.perf_counter() - start,
                    cache_hit=True,
                )
        result = self._plan(expr, start)
        if key is not None:
            # Store a private copy: callers may freely mutate the returned
            # result's lists without corrupting future cache hits.
            self.cache.put(key, self._copy_result(result))
        return result

    def rewrite_all(self, expressions: Iterable[mx.Expr]) -> List[RewriteResult]:
        """Rewrite a batch, planning each distinct expression only once.

        Structurally identical inputs (equal fingerprints) share one planning
        run — the dominant pattern in benchmark view sweeps — and every
        duplicate's result is marked as a cache hit.  Results come back in
        input order.
        """
        expressions = list(expressions)
        planned: Dict[str, RewriteResult] = {}
        results: List[RewriteResult] = []
        for expr in expressions:
            fingerprint = expr.fingerprint()
            prior = planned.get(fingerprint)
            if prior is None:
                prior = self.rewrite(expr)
                planned[fingerprint] = prior
                results.append(prior)
            else:
                results.append(self._copy_result(prior, cache_hit=True))
        return results

    def _plan(self, expr: mx.Expr, start: float) -> RewriteResult:
        # The saturation budgets live on both the session (the declared,
        # cache-keyed values) and the engine (what saturation actually
        # runs).  Sync them here so a budget mutated directly on the
        # session — bypassing set_budgets — is effective in the same
        # rewrite that re-keys the cache; key and behaviour never diverge.
        self.engine.max_rounds = self.max_rounds
        self.engine.max_atoms = self.max_atoms
        self.engine.max_classes = self.max_classes
        ctx = PlanContext(session=self, expr=expr)
        for stage in self.stages:
            stage_start = time.perf_counter()
            stage.run(ctx)
            ctx.timings[stage.name] = time.perf_counter() - stage_start
        footprint = None
        if ctx.instance is not None:
            footprint = PlanFootprint.from_instance(
                ctx.instance,
                ctx.saturation,
                (view.name for view in self.views),
            )
        return RewriteResult(
            original=expr,
            best=ctx.best_expr,
            original_cost=ctx.original_cost,
            best_cost=ctx.best_cost,
            changed=ctx.best_expr != expr,
            rewrite_seconds=time.perf_counter() - start,
            alternatives=ctx.alternatives,
            saturation=ctx.saturation,
            used_views=ctx.used_views,
            stage_timings=dict(ctx.timings),
            cache_hit=False,
            fingerprint=expr.fingerprint(),
            footprint=footprint,
        )

    # ------------------------------------------------------------------ cloning
    def with_views(self, views: Sequence[LAView]) -> "PlanSession":
        """A copy of this session using a different view set.

        Every constructor option is preserved — including ``include_view_voi``
        and the normalized-matrix declarations that drive Morpheus rule
        inclusion — so derived sessions cannot silently regress to defaults.
        """
        return PlanSession(
            catalog=self.catalog,
            views=views,
            estimator=self.estimator,
            constraints=self.base_constraints,
            include_decompositions=self.include_decompositions,
            include_systemml_rules=self.include_systemml_rules,
            include_morpheus_rules=self.include_morpheus_rules,
            include_view_voi=self.include_view_voi,
            max_rounds=self.max_rounds,
            max_atoms=self.max_atoms,
            max_classes=self.max_classes,
            prune=self.prune,
            reorder_matmul_chains=self.reorder_matmul_chains,
            alternatives_limit=self.alternatives_limit,
            normalized_matrices=self.normalized_matrices,
            cache_size=self.cache.capacity,
            enable_cache=self.enable_cache,
            use_constraint_index=self.engine.use_index,
            tighten_thresholds=self.tighten_thresholds,
            chase_workers=self.engine.chase_workers,
        )


__all__ = ["PlanSession"]
