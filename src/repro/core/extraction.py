"""Minimum-cost extraction from a saturated VREM instance.

After the chase, every equivalence class of the instance may have several
*derivations*: a leaf fact (a stored base matrix or materialized view, a
scalar constant, the identity / zero matrix) or any operation atom producing
it.  Each derivation of the query's root class corresponds to one equivalent
rewriting; its cost is the summed size of the intermediates it materialises
(§7.1).

Extraction computes, by a Bellman-style fixpoint over classes, the cheapest
derivation of every class and reconstructs the cheapest expression for the
root.  This is the realisation of the provenance-based enumeration of
minimal rewritings with cost pruning (Prune_prov, §7.3): derivations are
costed exactly once per class (memoisation), partial derivations costlier
than the best-known full derivation are never expanded, and cyclic
derivations (introduced e.g. by involution constraints) are priced out by the
fixpoint.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cost.model import NnzInfo
from repro.exceptions import DecodingError, RewriteError
from repro.lang import matrix_expr as mx
from repro.vrem.atoms import Atom
from repro.vrem.decoder import decode_atom_to_expr, decode_fact_to_expr
from repro.vrem.instance import VremInstance
from repro.vrem.schema import relation_spec

#: Small per-operator charge that breaks ties in favour of smaller expressions
#: and guarantees strictly increasing cost along any derivation cycle.
_OPERATOR_EPSILON = 1e-3

_LEAF_RELATIONS = ("name", "scalar_const", "scalar_name", "identity", "zero")


@dataclass
class _Derivation:
    """One way of producing a class: either a leaf fact or an op atom."""

    atom: Atom
    is_leaf: bool
    output_index: int = 0
    input_classes: Tuple[int, ...] = ()


def _collect_derivations(instance: VremInstance) -> Dict[int, List[_Derivation]]:
    derivations: Dict[int, List[_Derivation]] = {}
    for relation in _LEAF_RELATIONS:
        for atom in instance.atoms(relation):
            cid = instance.find(atom.args[0])
            derivations.setdefault(cid, []).append(_Derivation(atom=atom, is_leaf=True))
    for atom in instance.atoms():
        spec = relation_spec(atom.relation)
        if spec.is_fact or not spec.output_positions:
            continue
        input_classes = tuple(
            instance.find(atom.args[pos])
            for pos in spec.input_positions
            if isinstance(atom.args[pos], int)
        )
        for out_index, pos in enumerate(spec.output_positions):
            arg = atom.args[pos]
            if not isinstance(arg, int):
                continue
            cid = instance.find(arg)
            derivations.setdefault(cid, []).append(
                _Derivation(
                    atom=atom,
                    is_leaf=False,
                    output_index=out_index,
                    input_classes=input_classes,
                )
            )
    return derivations


def _class_size(cid: int, infos: Dict[int, NnzInfo]) -> float:
    info = infos.get(cid)
    return info.size if info is not None else 1.0


def _compute_costs(
    instance: VremInstance,
    derivations: Dict[int, List[_Derivation]],
    infos: Dict[int, NnzInfo],
    max_passes: int = 25,
) -> Tuple[Dict[int, float], Dict[int, _Derivation]]:
    """Fixpoint computation of the cheapest derivation cost of every class."""
    costs: Dict[int, float] = {}
    choices: Dict[int, _Derivation] = {}
    for cid, cands in derivations.items():
        for derivation in cands:
            if derivation.is_leaf:
                costs[cid] = 0.0
                choices[cid] = derivation
                break
    for _ in range(max_passes):
        changed = False
        for cid, cands in derivations.items():
            best_cost = costs.get(cid, float("inf"))
            best_choice = choices.get(cid)
            for derivation in cands:
                if derivation.is_leaf:
                    candidate = 0.0
                else:
                    candidate = _class_size(cid, infos) + _OPERATOR_EPSILON
                    feasible = True
                    for input_cid in derivation.input_classes:
                        input_cost = costs.get(input_cid)
                        if input_cost is None:
                            feasible = False
                            break
                        candidate += input_cost
                    if not feasible:
                        continue
                if candidate < best_cost - 1e-12:
                    best_cost = candidate
                    best_choice = derivation
            if best_choice is not None and (cid not in costs or best_cost < costs[cid] - 1e-12):
                costs[cid] = best_cost
                choices[cid] = best_choice
                changed = True
        if not changed:
            break
    return costs, choices


def _reconstruct(
    cid: int,
    instance: VremInstance,
    choices: Dict[int, _Derivation],
    infos: Dict[int, NnzInfo],
    _stack: Optional[set] = None,
) -> mx.Expr:
    _stack = _stack if _stack is not None else set()
    cid = instance.find(cid)
    if cid in _stack:
        raise DecodingError(f"cyclic cheapest derivation through class {cid}")
    derivation = choices.get(cid)
    if derivation is None:
        raise DecodingError(f"class {cid} has no extractable derivation")
    if derivation.is_leaf:
        shape = instance.shape(cid)
        return decode_fact_to_expr(derivation.atom, shape)
    _stack.add(cid)
    try:
        children = [
            _reconstruct(input_cid, instance, choices, infos, _stack)
            for input_cid in derivation.input_classes
        ]
    finally:
        _stack.discard(cid)
    return decode_atom_to_expr(derivation.atom, derivation.output_index, children)


def extract_best_expression(
    instance: VremInstance,
    root: int,
    infos: Dict[int, NnzInfo],
) -> Tuple[mx.Expr, float]:
    """The cheapest equivalent expression of the root class, with its DP cost."""
    derivations = _collect_derivations(instance)
    costs, choices = _compute_costs(instance, derivations, infos)
    root = instance.find(root)
    if root not in choices:
        raise RewriteError("the root class has no extractable derivation")
    expr = _reconstruct(root, instance, choices, infos)
    return expr, costs[root]


def enumerate_equivalent_expressions(
    instance: VremInstance,
    root: int,
    infos: Dict[int, NnzInfo],
    limit: int = 8,
    max_depth: int = 12,
) -> List[Tuple[mx.Expr, float]]:
    """Enumerate up to ``limit`` distinct equivalent expressions of the root.

    Expressions are produced cheapest-first using the per-class optimal costs
    as lower bounds (a best-first search over the choice of the root's
    derivation and, recursively, of its inputs' cheapest derivations).  This
    mirrors Figure 4, where several equivalent reorderings of a pipeline are
    listed alongside the views-based rewriting.
    """
    derivations = _collect_derivations(instance)
    costs, choices = _compute_costs(instance, derivations, infos)
    root = instance.find(root)
    results: List[Tuple[mx.Expr, float]] = []
    seen = set()

    root_candidates: List[Tuple[float, int, _Derivation]] = []
    for order, derivation in enumerate(derivations.get(root, [])):
        if derivation.is_leaf:
            bound = 0.0
        else:
            bound = _class_size(root, infos) + _OPERATOR_EPSILON
            feasible = True
            for input_cid in derivation.input_classes:
                if input_cid not in costs:
                    feasible = False
                    break
                bound += costs[input_cid]
            if not feasible:
                continue
        heapq.heappush(root_candidates, (bound, order, derivation))

    while root_candidates and len(results) < limit:
        bound, _, derivation = heapq.heappop(root_candidates)
        local_choices = dict(choices)
        local_choices[root] = derivation
        try:
            expr = _reconstruct(root, instance, local_choices, infos)
        except DecodingError:
            continue
        key = expr.signature()
        if key in seen:
            continue
        seen.add(key)
        results.append((expr, bound))
    results.sort(key=lambda pair: pair[1])
    return results
