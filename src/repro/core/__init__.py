"""HADAD's core: the rewriting optimizer.

The optimizer realises the end-to-end reduction of Figure 1:

1. the input LA (or hybrid-LA) expression is encoded relationally on the
   VREM schema (:mod:`repro.vrem.encoder`);
2. the encoding is chased with the MMC constraints and the view constraints
   (:mod:`repro.chase.saturation`), with cost-threshold pruning;
3. the minimum-cost equivalent derivation of the root class is extracted
   (:mod:`repro.core.extraction`), which plays the role of the
   provenance-based enumeration + costing of PACB++;
4. the chosen derivation is decoded back into an LA expression
   (:mod:`repro.vrem.decoder`) that any backend can execute unchanged.

The public entry point is :class:`repro.api.Engine`;
:class:`repro.core.optimizer.HadadOptimizer` remains as a deprecated thin
façade over the staged :class:`repro.planner.PlanSession`, which owns the
long-lived state (compiled constraint program, saturation engine,
fingerprint-keyed rewrite cache).
"""

from repro.constraints.views import LAView
from repro.core.optimizer import HadadOptimizer
from repro.core.result import RewriteResult
from repro.core.extraction import extract_best_expression, enumerate_equivalent_expressions
from repro.core.matchain import optimize_matmul_chains
from repro.planner.session import PlanSession

__all__ = [
    "LAView",
    "HadadOptimizer",
    "PlanSession",
    "RewriteResult",
    "extract_best_expression",
    "enumerate_equivalent_expressions",
    "optimize_matmul_chains",
]
