"""Optimal matrix-chain multiplication ordering.

The chase explores re-associations of products through the associativity
constraints, but for longer chains the number of parenthesisations grows as
the Catalan numbers and the bounded chase may not enumerate the optimum.
This module provides the classic O(n^3) dynamic program, minimising the sum
of intermediate result sizes (the cost measure of §7.1), and applies it to
every maximal multiplication chain of an expression as a final refinement —
the same role SystemML's ``mmchain`` optimizer plays for that system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.catalog import Catalog
from repro.exceptions import ShapeError, UnknownMatrixError
from repro.lang import matrix_expr as mx
from repro.lang.shapes import shape_of
from repro.lang.visitor import transform_bottom_up

Shape = Tuple[int, int]


def _flatten_chain(expr: mx.Expr) -> List[mx.Expr]:
    """The maximal multiplication chain rooted at ``expr`` (left to right)."""
    if isinstance(expr, mx.MatMul):
        return _flatten_chain(expr.left) + _flatten_chain(expr.right)
    return [expr]


def optimal_chain_order(shapes: Sequence[Shape]) -> Tuple[float, object]:
    """Dynamic program over a chain of conformable matrices.

    Returns ``(cost, split_tree)`` where the split tree is either an index
    (single matrix) or a pair of sub-trees, and the cost is the total size of
    all intermediate products (the final product excluded, matching γ).
    """
    n = len(shapes)
    if n == 0:
        raise ShapeError("cannot order an empty chain")
    if n == 1:
        return 0.0, 0
    for left, right in zip(shapes, shapes[1:]):
        if left[1] != right[0]:
            raise ShapeError(f"non-conformable chain: {left} then {right}")
    best_cost: Dict[Tuple[int, int], float] = {}
    best_split: Dict[Tuple[int, int], Optional[int]] = {}
    for i in range(n):
        best_cost[(i, i)] = 0.0
        best_split[(i, i)] = None
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            best_cost[(i, j)] = float("inf")
            for k in range(i, j):
                # Size of the product over [i..j] — charged only when it is
                # an intermediate, i.e. when (i, j) is not the full chain.
                size = float(shapes[i][0]) * float(shapes[j][1])
                charge = 0.0 if (i == 0 and j == n - 1) else size
                cost = best_cost[(i, k)] + best_cost[(k + 1, j)]
                cost += 0.0 if i == k else float(shapes[i][0]) * float(shapes[k][1])
                cost += 0.0 if k + 1 == j else float(shapes[k + 1][0]) * float(shapes[j][1])
                if cost < best_cost[(i, j)]:
                    best_cost[(i, j)] = cost
                    best_split[(i, j)] = k

    def build(i: int, j: int):
        if i == j:
            return i
        k = best_split[(i, j)]
        return (build(i, k), build(k + 1, j))

    return best_cost[(0, n - 1)], build(0, n - 1)


def _rebuild_from_split(split, factors: Sequence[mx.Expr]) -> mx.Expr:
    if isinstance(split, int):
        return factors[split]
    left, right = split
    return mx.MatMul(_rebuild_from_split(left, factors), _rebuild_from_split(right, factors))


def optimize_matmul_chains(expr: mx.Expr, catalog: Optional[Catalog]) -> mx.Expr:
    """Re-associate every multiplication chain of ``expr`` optimally.

    Chains whose factor shapes cannot be resolved are left untouched.
    """
    if catalog is None:
        return expr

    def rewrite(node: mx.Expr) -> mx.Expr:
        if not isinstance(node, mx.MatMul):
            return node
        factors = _flatten_chain(node)
        if len(factors) < 3:
            return node
        try:
            shapes = [shape_of(factor, catalog) for factor in factors]
            _, split = optimal_chain_order(shapes)
        except (ShapeError, UnknownMatrixError):
            return node
        return _rebuild_from_split(split, factors)

    return transform_bottom_up(expr, rewrite)
