"""The HADAD optimizer: encode → chase → extract → decode.

:class:`HadadOptimizer` is the library's main entry point.  Given a catalog
(for dimensions and sparsity metadata), a set of materialized LA views and a
sparsity estimator, ``rewrite(expr)`` returns a
:class:`~repro.core.result.RewriteResult` whose ``best`` field is the
minimum-cost expression equivalent to ``expr`` under the LA properties,
the SystemML aggregate rules, the (optional) Morpheus factorization rules
and the views — or ``expr`` itself when nothing cheaper exists.

The optimizer never executes anything: the chosen expression can be handed
to any backend of :mod:`repro.backends` (or printed in the syntax of an
external system) unchanged, which is the "no modification to the execution
platform" claim of the paper.

Since the planner refactor this class is a thin façade over
:class:`repro.planner.PlanSession`, which owns the long-lived state: the
constraint set compiled once into an indexed
:class:`~repro.chase.program.ConstraintProgram`, the saturation engine, and
a fingerprint-keyed rewrite cache.  The façade keeps the historical
constructor and attribute surface; code that wants cache control, per-stage
timings or batch deduplication should use the session directly (it is
exposed as :attr:`HadadOptimizer.session`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._compat import warn_legacy_entry_point
from repro.config import PlannerConfig
from repro.constraints.core import Constraint
from repro.constraints.views import LAView
from repro.core.result import RewriteResult
from repro.data.catalog import Catalog
from repro.lang import matrix_expr as mx
from repro.planner.session import PlanSession


class HadadOptimizer:
    """Cost-based semantic rewriting of LA / hybrid-LA expressions.

    .. deprecated::
        ``HadadOptimizer`` is a legacy entry point; new code should use
        :class:`repro.api.Engine` (``engine.rewrite(expr)``), which drives
        the same :class:`~repro.planner.PlanSession` core through a frozen
        :class:`~repro.config.PlannerConfig` and produces byte-identical
        plans.  Constructing one emits a :class:`DeprecationWarning` once
        per process.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        views: Sequence[LAView] = (),
        estimator=None,
        constraints: Optional[Sequence[Constraint]] = None,
        include_decompositions: bool = False,
        include_systemml_rules: bool = True,
        include_morpheus_rules: bool = False,
        include_view_voi: bool = True,
        max_rounds: int = 4,
        max_atoms: int = 2_500,
        max_classes: int = 1_200,
        prune: bool = True,
        reorder_matmul_chains: bool = True,
        alternatives_limit: int = 6,
        normalized_matrices: Optional[Dict[str, Tuple[str, str, str]]] = None,
        enable_cache: bool = True,
        config: Optional[PlannerConfig] = None,
    ):
        warn_legacy_entry_point("HadadOptimizer", "repro.api.Engine")
        # The session folds the keyword knobs into one validated
        # PlannerConfig itself (and an explicit ``config`` wins there), so
        # the façade forwards rather than duplicating that fold.
        self.session = PlanSession(
            catalog=catalog,
            views=views,
            estimator=estimator,
            constraints=constraints,
            include_decompositions=include_decompositions,
            include_systemml_rules=include_systemml_rules,
            include_morpheus_rules=include_morpheus_rules,
            include_view_voi=include_view_voi,
            max_rounds=max_rounds,
            max_atoms=max_atoms,
            max_classes=max_classes,
            prune=prune,
            reorder_matmul_chains=reorder_matmul_chains,
            alternatives_limit=alternatives_limit,
            normalized_matrices=normalized_matrices,
            enable_cache=enable_cache,
            config=config,
        )

    @property
    def config(self) -> PlannerConfig:
        """The live options as a frozen :class:`PlannerConfig` snapshot."""
        return self.session.current_config()

    # ------------------------------------------------------------------ session state
    # The historical attribute surface, delegated to the owning session.
    # Setters keep post-construction assignment working the way it did on
    # the monolithic optimizer.  Correctness no longer depends on them:
    # every tunable option exposed here (budgets, prune, chain reordering,
    # alternatives limit, estimator) is read live by the session's rewrite
    # and is part of its cache key (PlanSession.options_key), so mutation —
    # through these setters or directly on the session — both takes effect
    # and re-keys cached plans.  The explicit invalidate() calls are kept
    # to release memory promptly.
    @property
    def catalog(self) -> Optional[Catalog]:
        return self.session.catalog

    @catalog.setter
    def catalog(self, value: Optional[Catalog]) -> None:
        self.session.catalog = value
        self.session.invalidate()

    @property
    def views(self) -> List[LAView]:
        return self.session.views

    @views.setter
    def views(self, value: Sequence[LAView]) -> None:
        self.session.set_views(value)

    @property
    def estimator(self):
        return self.session.estimator

    @estimator.setter
    def estimator(self, value) -> None:
        self.session.estimator = value
        self.session.invalidate()

    @property
    def base_constraints(self) -> List[Constraint]:
        return self.session.base_constraints

    @property
    def view_constraints(self) -> List[Constraint]:
        return self.session.view_constraints

    @property
    def normalized_matrices(self) -> Dict[str, Tuple[str, str, str]]:
        return self.session.normalized_matrices

    @normalized_matrices.setter
    def normalized_matrices(self, value: Optional[Dict[str, Tuple[str, str, str]]]) -> None:
        self.session.set_normalized_matrices(value)

    @property
    def max_rounds(self) -> int:
        return self.session.max_rounds

    @max_rounds.setter
    def max_rounds(self, value: int) -> None:
        self.session.set_budgets(max_rounds=value)

    @property
    def max_atoms(self) -> int:
        return self.session.max_atoms

    @max_atoms.setter
    def max_atoms(self, value: int) -> None:
        self.session.set_budgets(max_atoms=value)

    @property
    def max_classes(self) -> int:
        return self.session.max_classes

    @max_classes.setter
    def max_classes(self, value: int) -> None:
        self.session.set_budgets(max_classes=value)

    @property
    def prune(self) -> bool:
        return self.session.prune

    @prune.setter
    def prune(self, value: bool) -> None:
        self.session.prune = bool(value)
        self.session.invalidate()

    @property
    def reorder_matmul_chains(self) -> bool:
        return self.session.reorder_matmul_chains

    @reorder_matmul_chains.setter
    def reorder_matmul_chains(self, value: bool) -> None:
        self.session.reorder_matmul_chains = bool(value)
        self.session.invalidate()

    @property
    def alternatives_limit(self) -> int:
        return self.session.alternatives_limit

    @alternatives_limit.setter
    def alternatives_limit(self, value: int) -> None:
        self.session.alternatives_limit = int(value)
        self.session.invalidate()

    def _all_constraints(self) -> List[Constraint]:
        return self.session.base_constraints + self.session.view_constraints

    # ------------------------------------------------------------------ main entry
    def rewrite(self, expr: mx.Expr) -> RewriteResult:
        """Find the minimum-cost equivalent of ``expr``."""
        return self.session.rewrite(expr)

    # ------------------------------------------------------------------ conveniences
    def rewrite_all(self, expressions: Iterable[mx.Expr]) -> List[RewriteResult]:
        """Rewrite a batch of expressions, deduplicated by fingerprint."""
        return self.session.rewrite_all(expressions)

    def with_views(self, views: Sequence[LAView]) -> "HadadOptimizer":
        """A copy of this optimizer using a different view set.

        All constructor options are preserved (``include_view_voi``, the
        Morpheus / normalized-matrix settings, budgets, pruning, …); only the
        views change.
        """
        copy = HadadOptimizer.__new__(HadadOptimizer)
        copy.session = self.session.with_views(views)
        return copy
