"""The HADAD optimizer: encode → chase → extract → decode.

:class:`HadadOptimizer` is the library's main entry point.  Given a catalog
(for dimensions and sparsity metadata), a set of materialized LA views and a
sparsity estimator, ``rewrite(expr)`` returns a
:class:`~repro.core.result.RewriteResult` whose ``best`` field is the
minimum-cost expression equivalent to ``expr`` under the LA properties,
the SystemML aggregate rules, the (optional) Morpheus factorization rules
and the views — or ``expr`` itself when nothing cheaper exists.

The optimizer never executes anything: the chosen expression can be handed
to any backend of :mod:`repro.backends` (or printed in the syntax of an
external system) unchanged, which is the "no modification to the execution
platform" claim of the paper.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constraints import default_constraints
from repro.constraints.core import Constraint
from repro.constraints.views import LAView, constraints_for_views
from repro.chase.saturation import CostThresholdPruner, SaturationEngine
from repro.cost.model import annotate_instance_classes, expression_cost
from repro.cost.naive_estimator import NaiveMetadataEstimator
from repro.core.extraction import (
    enumerate_equivalent_expressions,
    extract_best_expression,
)
from repro.core.matchain import optimize_matmul_chains
from repro.core.result import RewriteResult
from repro.data.catalog import Catalog
from repro.exceptions import RewriteError, UnknownMatrixError
from repro.lang import matrix_expr as mx
from repro.lang.visitor import collect_refs
from repro.vrem.atoms import Const
from repro.vrem.encoder import LAEncoder
from repro.vrem.instance import VremInstance


class HadadOptimizer:
    """Cost-based semantic rewriting of LA / hybrid-LA expressions."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        views: Sequence[LAView] = (),
        estimator=None,
        constraints: Optional[Sequence[Constraint]] = None,
        include_decompositions: bool = False,
        include_systemml_rules: bool = True,
        include_morpheus_rules: bool = False,
        include_view_voi: bool = True,
        max_rounds: int = 4,
        max_atoms: int = 2_500,
        max_classes: int = 1_200,
        prune: bool = True,
        reorder_matmul_chains: bool = True,
        alternatives_limit: int = 6,
        normalized_matrices: Optional[Dict[str, Tuple[str, str, str]]] = None,
    ):
        self.catalog = catalog
        self.views = list(views)
        self.estimator = estimator if estimator is not None else NaiveMetadataEstimator()
        if constraints is None:
            constraints = default_constraints(
                include_decompositions=include_decompositions,
                include_systemml=include_systemml_rules,
                include_morpheus=include_morpheus_rules or bool(normalized_matrices),
            )
        self.base_constraints = list(constraints)
        self._register_view_metadata()
        self.view_constraints = constraints_for_views(
            self.views, catalog, include_voi=include_view_voi
        )
        self.max_rounds = max_rounds
        self.max_atoms = max_atoms
        self.max_classes = max_classes
        self.prune = prune
        self.reorder_matmul_chains = reorder_matmul_chains
        self.alternatives_limit = alternatives_limit
        #: Mapping of a matrix name to the names of its Morpheus factors
        #: (S, K, R), declaring it as a normalized (join-produced) matrix.
        self.normalized_matrices = dict(normalized_matrices or {})

    # ------------------------------------------------------------------ helpers
    def _register_view_metadata(self) -> None:
        """Make every view's stored result costable.

        A materialized view is a file on disk accompanied by metadata
        (dimensions, nnz); if the catalog does not already know the view's
        storage name, metadata derived from the view definition is registered
        so that rewritings referencing the view can be costed (and so that the
        harness can later materialise the values under the same name).
        """
        if self.catalog is None:
            return
        from repro.cost.model import annotate_expression
        from repro.data.matrix import MatrixMeta

        for view in self.views:
            if self.catalog.has_matrix(view.name):
                continue
            try:
                info = annotate_expression(view.definition, self.catalog, self.estimator)[
                    view.definition
                ]
            except UnknownMatrixError:
                continue
            if info.shape is None:
                continue
            self.catalog.register_metadata(
                MatrixMeta(
                    name=view.name,
                    rows=info.shape[0],
                    cols=info.shape[1],
                    nnz=int(round(info.nnz)),
                )
            )

    def _all_constraints(self) -> List[Constraint]:
        return self.base_constraints + self.view_constraints

    def _register_normalized_matrices(self, encoder: LAEncoder, expr: mx.Expr) -> None:
        """Add ``factorized`` facts for declared normalized matrices."""
        if not self.normalized_matrices:
            return
        referenced = collect_refs(expr)
        for matrix_name, (s_name, k_name, r_name) in self.normalized_matrices.items():
            if matrix_name not in referenced:
                continue
            m_cid = encoder.encode(mx.MatrixRef(matrix_name))
            s_cid = encoder.encode(mx.MatrixRef(s_name))
            k_cid = encoder.encode(mx.MatrixRef(k_name))
            r_cid = encoder.encode(mx.MatrixRef(r_name))
            encoder.instance.add_atom(
                "factorized", (m_cid, s_cid, k_cid, r_cid), ("normalized-matrix",)
            )

    def _original_cost(self, expr: mx.Expr) -> float:
        try:
            return expression_cost(expr, self.catalog, self.estimator)
        except UnknownMatrixError:
            return float("inf")

    # ------------------------------------------------------------------ main entry
    def rewrite(self, expr: mx.Expr) -> RewriteResult:
        """Find the minimum-cost equivalent of ``expr``."""
        start = time.perf_counter()
        original_cost = self._original_cost(expr)

        instance = VremInstance()
        encoder = LAEncoder(instance, self.catalog)
        root = encoder.encode(expr)
        self._register_normalized_matrices(encoder, expr)

        pruner = None
        if self.prune and original_cost != float("inf"):
            # The threshold bounds the size of any single new intermediate: an
            # intermediate larger than the entire original plan's cost can
            # never appear in a better plan (Example 7.2).  A small slack
            # keeps same-cost alternatives around for tie-breaking.
            threshold = max(original_cost * 1.5, 1024.0)
            pruner = CostThresholdPruner(threshold)

        engine = SaturationEngine(
            self._all_constraints(),
            max_rounds=self.max_rounds,
            max_atoms=self.max_atoms,
            max_classes=self.max_classes,
        )
        stats = engine.saturate(instance, pruner)

        infos = annotate_instance_classes(instance, self.catalog, self.estimator)
        try:
            best_expr, _ = extract_best_expression(instance, root, infos)
        except RewriteError:
            best_expr = expr
        alternatives_raw = enumerate_equivalent_expressions(
            instance, root, infos, limit=self.alternatives_limit
        )

        if self.reorder_matmul_chains and self.catalog is not None:
            best_expr = optimize_matmul_chains(best_expr, self.catalog)

        best_cost = self._cost_or_inf(best_expr)
        # Never return something we estimate to be worse than the original.
        if best_cost > original_cost or best_expr == expr:
            if best_cost > original_cost:
                best_expr, best_cost = expr, original_cost

        alternatives: List[Tuple[mx.Expr, float]] = []
        for alt_expr, _ in alternatives_raw:
            alternatives.append((alt_expr, self._cost_or_inf(alt_expr)))
        alternatives.sort(key=lambda pair: pair[1])

        elapsed = time.perf_counter() - start
        used_views = sorted(
            name for name in collect_refs(best_expr) if name in {v.name for v in self.views}
        )
        return RewriteResult(
            original=expr,
            best=best_expr,
            original_cost=original_cost,
            best_cost=best_cost,
            changed=best_expr != expr,
            rewrite_seconds=elapsed,
            alternatives=alternatives,
            saturation=stats,
            used_views=used_views,
        )

    def _cost_or_inf(self, expr: mx.Expr) -> float:
        try:
            return expression_cost(expr, self.catalog, self.estimator)
        except UnknownMatrixError:
            return float("inf")

    # ------------------------------------------------------------------ conveniences
    def rewrite_all(self, expressions: Iterable[mx.Expr]) -> List[RewriteResult]:
        """Rewrite a batch of expressions (used by the benchmark harness)."""
        return [self.rewrite(expr) for expr in expressions]

    def with_views(self, views: Sequence[LAView]) -> "HadadOptimizer":
        """A copy of this optimizer using a different view set."""
        return HadadOptimizer(
            catalog=self.catalog,
            views=views,
            estimator=self.estimator,
            constraints=self.base_constraints,
            max_rounds=self.max_rounds,
            max_atoms=self.max_atoms,
            max_classes=self.max_classes,
            prune=self.prune,
            reorder_matmul_chains=self.reorder_matmul_chains,
            alternatives_limit=self.alternatives_limit,
            normalized_matrices=self.normalized_matrices,
        )
