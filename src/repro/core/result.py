"""Result object returned by the optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.chase.saturation import SaturationResult
from repro.lang import matrix_expr as mx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.footprint import PlanFootprint


@dataclass
class RewriteResult:
    """Outcome of one ``HadadOptimizer.rewrite`` call.

    Attributes
    ----------
    original:
        The input expression.
    best:
        The minimum-cost equivalent expression found (the input itself when
        no cheaper alternative exists).
    original_cost / best_cost:
        γ estimates under the optimizer's cost model.
    changed:
        Whether ``best`` differs structurally from ``original``.
    rewrite_seconds:
        Wall-clock time spent by the optimizer (the paper's RW_find).
    alternatives:
        Further equivalent expressions with their costs, cheapest first
        (bounded; used by reports and tests, cf. Figure 4).
    saturation:
        Chase statistics.
    used_views:
        Names of materialized views referenced by ``best``.
    stage_timings:
        Wall-clock seconds per planner stage (encode / saturate / annotate /
        extract / postopt), filled by :class:`repro.planner.PlanSession`.
    cache_hit:
        True when this result was served from the session's rewrite cache
        (timings then refer to the original planning run).
    fingerprint:
        Structural fingerprint of ``original`` (the cache key component).
    footprint:
        The catalog names / views / constraints this plan actually
        consulted (:class:`repro.catalog.footprint.PlanFootprint`), used
        for selective revalidation under catalog deltas.  ``None`` for
        results predating footprint capture; such plans are always
        evicted on any delta.
    """

    original: mx.Expr
    best: mx.Expr
    original_cost: float
    best_cost: float
    changed: bool
    rewrite_seconds: float
    alternatives: List[Tuple[mx.Expr, float]] = field(default_factory=list)
    saturation: Optional[SaturationResult] = None
    used_views: List[str] = field(default_factory=list)
    stage_timings: Dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    fingerprint: Optional[str] = None
    footprint: Optional["PlanFootprint"] = None

    def copy(self, **overrides) -> "RewriteResult":
        """A copy whose mutable containers are private to the caller.

        Cached and shared results must stay pristine, so every result
        crossing a cache or pool boundary gets its own lists/dicts
        (including the saturation stats); expressions are immutable value
        objects and can be shared freely.  ``overrides`` replace fields on
        the copy (e.g. ``cache_hit=True`` when serving a memoized plan).
        """
        fields = {
            "alternatives": list(self.alternatives),
            "used_views": list(self.used_views),
            "stage_timings": dict(self.stage_timings),
        }
        saturation = self.saturation
        if saturation is not None:
            saturation = replace(
                saturation,
                applications_by_constraint=dict(saturation.applications_by_constraint),
            )
        fields["saturation"] = saturation
        fields.update(overrides)
        return replace(self, **fields)

    @property
    def estimated_speedup(self) -> float:
        """Ratio of estimated costs (>= 1 when the rewriting should help)."""
        if self.best_cost <= 0:
            return float("inf") if self.original_cost > 0 else 1.0
        return self.original_cost / self.best_cost

    def summary(self) -> str:
        """One-line human-readable description."""
        marker = "rewritten" if self.changed else "unchanged"
        return (
            f"[{marker}] cost {self.original_cost:.3g} -> {self.best_cost:.3g} "
            f"({self.estimated_speedup:.2f}x est.) in {self.rewrite_seconds * 1000:.1f} ms: "
            f"{self.best.to_string()}"
        )
