"""The chased VREM instance.

A :class:`VremInstance` is the ground structure that the paper's reduction
manipulates: a set of atoms over the VREM relations whose ID arguments denote
*equivalence classes* of expressions (§6.2.1).  The functional EGDs of
§6.2.3 (every operation relation is functional in its inputs) are maintained
incrementally as a congruence: whenever two atoms of a functional relation
agree on their canonical input arguments, their output classes are merged,
and after every merge the instance re-canonicalises itself to a fixpoint.

Three structural invariants keep the chase hot path fast:

* **Hash-consing** — every stored atom is interned: one canonical
  :class:`~repro.vrem.atoms.Atom` object per (relation, canonical args)
  pair, with a cached hash, so index probes cost a pointer comparison.
* **Canonical commutative keys** — the congruence table keys commutative
  operation relations (``add_m``, ``multi_e``, scalar ``add_s`` /
  ``multi_s``) on the *sorted* input multiset, so ``A + B`` and ``B + A``
  hash-cons to the same output class at construction time instead of
  waiting for the commutativity TGD to merge them.
* **Incremental repair** — a class merge re-canonicalises only the atoms
  that actually mention the retired class (found through a per-class
  occurrence index), not the whole instance; this is the e-graph ``repair``
  step, and it turns the former O(instance) rebuild-per-union into
  O(delta).

Besides the atoms, the instance tracks per-class *shape* metadata (the
``size`` relation of Table 1), optional known scalar values and, per atom, a
set of provenance labels recording which constraint or encoding step
introduced it — the information the provenance-aware backchase reads off.
For the semi-naive chase the instance also keeps append-only **delta logs**
(per relation, plus one for newly shaped classes): every atom added or
re-canonicalised is appended, so the saturation engine can restrict
premise matching to what actually changed since a constraint's last attempt
(:meth:`relation_log`, :meth:`shape_log`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ChaseError
from repro.vrem.atoms import Atom, AtomInterner, Const, Var
from repro.vrem.schema import VREM_SCHEMA, infer_output_shapes, relation_spec

Shape = Tuple[int, int]
Term = object  # int (class ID) or Const

#: Operation relations whose inputs commute: the congruence key uses the
#: sorted input multiset so both operand orders share one output class.
COMMUTATIVE_RELATIONS = frozenset({"add_m", "multi_e", "add_s", "multi_s"})


def _term_sort_key(term: Term) -> Tuple[int, object]:
    """Total order over ground terms, for canonical commutative keys."""
    if isinstance(term, int):
        return (0, term)
    return (1, repr(term))


class VremInstance:
    """Congruence-closed set of ground VREM atoms over equivalence classes."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._next_id = 0
        self._num_classes = 0
        self._interner = AtomInterner()
        self._atom_provenance: Dict[Atom, Set[str]] = {}
        self._by_relation: Dict[str, Set[Atom]] = defaultdict(set)
        self._by_position: Dict[Tuple[str, int, object], Set[Atom]] = defaultdict(set)
        #: Per-class occurrence index: which stored atoms mention a class.
        #: This is what makes :meth:`rebuild` incremental — a merge touches
        #: exactly the atoms listed under the retired class.
        self._atoms_by_class: Dict[int, Set[Atom]] = defaultdict(set)
        self._congruence: Dict[Tuple, Atom] = {}
        self._shape: Dict[int, Shape] = {}
        self._scalar_value: Dict[int, float] = {}
        self._pending_unions: List[Tuple[int, int]] = []
        #: Monotonically increasing counter, bumped on every structural change;
        #: used by callers (e.g. the saturation engine) to detect staleness.
        self.version = 0
        #: Per-relation change counters: bumped when a relation gains an atom
        #: or one of its atoms is re-canonicalised after a class merge.  The
        #: indexed saturation engine compares these against the values it saw
        #: when a constraint was last attempted, so unaffected constraints
        #: are skipped entirely.
        self._relation_versions: Dict[str, int] = defaultdict(int)
        #: Counter for shape-metadata changes (``size`` atoms match against
        #: metadata, not stored atoms, so they need their own staleness signal).
        self.shape_version = 0
        #: Append-only semi-naive delta logs: atoms added or re-canonicalised,
        #: per relation, and classes that gained a shape.  The saturation
        #: engine slices these by remembered lengths (watermarks).
        self._delta_log: Dict[str, List[Atom]] = defaultdict(list)
        self._shape_delta_log: List[int] = []

    # ------------------------------------------------------------------ classes
    def new_class(self) -> int:
        """Allocate a fresh equivalence-class identifier."""
        cid = self._next_id
        self._next_id += 1
        self._parent[cid] = cid
        self._num_classes += 1
        return cid

    def find(self, cid: int) -> int:
        """Canonical representative of a class (with path compression)."""
        parent = self._parent
        root = cid
        while parent[root] != root:
            root = parent[root]
        while parent[cid] != root:
            parent[cid], cid = root, parent[cid]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge two classes and return the surviving representative.

        Shape and scalar-value metadata are reconciled; conflicting shapes
        indicate an unsound constraint and raise :class:`ChaseError`.
        The re-canonicalisation of affected atoms is deferred to
        :meth:`rebuild` (incremental: only atoms mentioning the retired
        class are touched).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        # Keep the smaller id as representative for determinism.
        keep, drop = (ra, rb) if ra < rb else (rb, ra)
        shape_keep, shape_drop = self._shape.get(keep), self._shape.pop(drop, None)
        if shape_keep is not None and shape_drop is not None and shape_keep != shape_drop:
            self._shape[drop] = shape_drop  # restore before failing
            raise ChaseError(
                f"cannot merge classes {keep} and {drop}: shapes {shape_keep} != {shape_drop}"
            )
        if shape_keep is None and shape_drop is not None:
            self._shape[keep] = shape_drop
            # The surviving class just became shape-matchable.
            self.shape_version += 1
            self._shape_delta_log.append(keep)
        value_drop = self._scalar_value.pop(drop, None)
        if value_drop is not None and keep not in self._scalar_value:
            self._scalar_value[keep] = value_drop
        self._parent[drop] = keep
        self._num_classes -= 1
        self._pending_unions.append((keep, drop))
        return keep

    def same_class(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def classes(self) -> Set[int]:
        """All canonical class representatives currently alive."""
        return {self.find(cid) for cid in self._parent}

    def num_classes(self) -> int:
        """Number of live classes (tracked incrementally; O(1))."""
        return self._num_classes

    # ------------------------------------------------------------------ metadata
    def set_shape(self, cid: int, shape: Optional[Shape]) -> None:
        if shape is None:
            return
        root = self.find(cid)
        known = self._shape.get(root)
        shape = (int(shape[0]), int(shape[1]))
        if known is not None and known != shape:
            raise ChaseError(f"class {root} already has shape {known}, cannot set {shape}")
        if known is None:
            self.shape_version += 1
            self._shape_delta_log.append(root)
        self._shape[root] = shape

    def shape(self, cid: int) -> Optional[Shape]:
        return self._shape.get(self.find(cid))

    def shaped_class_count(self) -> int:
        """Number of classes with known shape (selectivity of ``size`` scans)."""
        return len(self._shape)

    def shaped_classes(self) -> List[int]:
        """The classes with known shape, sorted.

        Keys of the shape table are canonical at rest (``union`` re-keys
        the retired side eagerly), so this equals
        ``sorted(c for c in classes() if shape(c) is not None)`` without the
        O(instance) scan."""
        return sorted(self._shape)

    def set_scalar_value(self, cid: int, value: float) -> None:
        self._scalar_value[self.find(cid)] = float(value)

    def scalar_value(self, cid: int) -> Optional[float]:
        return self._scalar_value.get(self.find(cid))

    # ------------------------------------------------------------------ atoms
    def _canonical_args(self, args: Sequence[Term]) -> Tuple[Term, ...]:
        canonical = []
        for arg in args:
            if isinstance(arg, bool):
                raise ChaseError("boolean atom arguments are not supported")
            if isinstance(arg, int):
                canonical.append(self.find(arg))
            elif isinstance(arg, Const):
                canonical.append(arg)
            elif isinstance(arg, Var):
                raise ChaseError("ground instances cannot contain variables")
            else:
                canonical.append(Const(arg))
        return tuple(canonical)

    def add_atom(
        self,
        relation: str,
        args: Sequence[Term],
        provenance: Optional[Iterable[str]] = None,
    ) -> Atom:
        """Insert a ground atom (idempotent), maintaining congruence.

        ``size`` atoms are intercepted and stored as shape metadata instead
        of as ordinary atoms (the matcher reconstitutes them on demand).
        Returns the canonical atom as stored.
        """
        if relation not in VREM_SCHEMA:
            raise ChaseError(f"unknown VREM relation {relation!r}")
        canonical = self._canonical_args(args)
        if relation == "size":
            cid, rows, cols = canonical
            if isinstance(rows, Const) and isinstance(cols, Const):
                self.set_shape(cid, (int(rows.value), int(cols.value)))
            return Atom("size", canonical)
        atom = self._insert_canonical(relation, canonical, set(provenance or ()))
        if self._pending_unions:
            self.rebuild()
        return atom

    def _insert_canonical(
        self, relation: str, canonical: Tuple[Term, ...], labels: Set[str]
    ) -> Atom:
        """Store one canonical atom: intern, index, log, congruence, shapes."""
        atom = self._interner.intern(relation, canonical)
        existing = self._atom_provenance.get(atom)
        if existing is not None:
            existing |= labels
            return atom
        self._atom_provenance[atom] = labels
        self._by_relation[relation].add(atom)
        by_position = self._by_position
        by_class = self._atoms_by_class
        for position, arg in enumerate(canonical):
            by_position[(relation, position, arg)].add(atom)
            if isinstance(arg, int):
                by_class[arg].add(atom)
        self.version += 1
        self._relation_versions[relation] += 1
        self._delta_log[relation].append(atom)
        self._apply_congruence(atom)
        self._infer_shapes(atom)
        return atom

    def _remove_atom(self, atom: Atom) -> Set[str]:
        """Unindex a stale (pre-merge) atom, returning its provenance labels."""
        labels = self._atom_provenance.pop(atom, set())
        self._by_relation[atom.relation].discard(atom)
        for position, arg in enumerate(atom.args):
            self._by_position[(atom.relation, position, arg)].discard(atom)
            if isinstance(arg, int):
                entry = self._atoms_by_class.get(arg)
                if entry is not None:
                    entry.discard(atom)
        key = self._congruence_key(atom)
        if key is not None and self._congruence.get(key) is atom:
            del self._congruence[key]
        self._interner.discard(atom)
        return labels

    def _congruence_key(self, atom: Atom) -> Optional[Tuple]:
        spec = relation_spec(atom.relation)
        if not spec.functional:
            return None
        key_args: Tuple[Term, ...] = tuple(atom.args[pos] for pos in spec.input_positions)
        if atom.relation in COMMUTATIVE_RELATIONS:
            key_args = tuple(sorted(key_args, key=_term_sort_key))
        return (atom.relation, key_args)

    def _operation_key(self, relation: str, canonical_inputs: Tuple[Term, ...]) -> Tuple:
        """The congruence-table key for an operation's canonical inputs."""
        if relation in COMMUTATIVE_RELATIONS:
            canonical_inputs = tuple(sorted(canonical_inputs, key=_term_sort_key))
        return (relation, canonical_inputs)

    def _apply_congruence(self, atom: Atom) -> None:
        key = self._congruence_key(atom)
        if key is None:
            return
        other = self._congruence.get(key)
        if other is None:
            self._congruence[key] = atom
            return
        if other is atom:
            return
        spec = relation_spec(atom.relation)
        for pos in spec.output_positions:
            a, b = atom.args[pos], other.args[pos]
            if isinstance(a, int) and isinstance(b, int):
                self.union(a, b)

    def _infer_shapes(self, atom: Atom) -> None:
        spec = relation_spec(atom.relation)
        if spec.is_fact:
            return
        input_shapes = []
        const_args = []
        for pos in spec.input_positions:
            arg = atom.args[pos]
            if isinstance(arg, int):
                input_shapes.append(self.shape(arg))
            else:
                input_shapes.append((1, 1))
                const_args.append(arg.value)
        out_shapes = infer_output_shapes(atom.relation, input_shapes, const_args)
        for pos, shape in zip(spec.output_positions, out_shapes):
            arg = atom.args[pos]
            if shape is not None and isinstance(arg, int) and self.shape(arg) is None:
                self.set_shape(arg, shape)

    def add_op(
        self,
        relation: str,
        inputs: Sequence[Term],
        provenance: Optional[Iterable[str]] = None,
    ) -> Tuple[int, ...]:
        """Hash-consing insertion of an operation atom.

        If an atom of ``relation`` with the given (canonicalised, and for
        commutative relations order-normalised) inputs already exists, its
        output class IDs are returned; otherwise fresh classes are allocated
        for the outputs, the atom is added, and the new IDs are returned.
        """
        spec = relation_spec(relation)
        if spec.is_fact:
            raise ChaseError(f"{relation!r} is a fact relation, not an operation")
        canonical_inputs = self._canonical_args(inputs)
        key = self._operation_key(relation, canonical_inputs)
        existing = self._congruence.get(key)
        if existing is not None:
            return tuple(self.find(existing.args[pos]) for pos in spec.output_positions)
        outputs = tuple(self.new_class() for _ in spec.output_positions)
        args: List[Term] = [None] * spec.arity
        for pos, value in zip(spec.input_positions, canonical_inputs):
            args[pos] = value
        for pos, value in zip(spec.output_positions, outputs):
            args[pos] = value
        self.add_atom(relation, args, provenance)
        return tuple(self.find(out) for out in outputs)

    def has_atom(self, relation: str, args: Sequence[Term]) -> bool:
        canonical = self._canonical_args(args)
        return Atom(relation, canonical) in self._atom_provenance

    def contains_atom(self, atom: Atom) -> bool:
        """Whether this exact (already-canonical) atom is currently stored."""
        return atom in self._atom_provenance

    def atoms(self, relation: Optional[str] = None) -> Iterator[Atom]:
        """Iterate over stored atoms, optionally restricted to one relation."""
        if relation is not None:
            yield from list(self._by_relation.get(relation, ()))
            return
        yield from list(self._atom_provenance)

    def atom_count(self, relation: str) -> int:
        """Number of stored atoms of one relation (cheap)."""
        return len(self._by_relation.get(relation, ()))

    def atoms_with(self, relation: str, position: int, value) -> Set[Atom]:
        """Atoms of ``relation`` whose ``position``-th argument equals ``value``.

        ``value`` must already be canonical (a class representative or a
        :class:`Const`); this is the index the homomorphism matcher joins on.
        """
        if isinstance(value, int):
            value = self.find(value)
        return self._by_position.get((relation, position, value), set())

    def provenance(self, atom: Atom) -> FrozenSet[str]:
        canonical = Atom(atom.relation, self._canonical_args(atom.args))
        return frozenset(self._atom_provenance.get(canonical, ()))

    def num_atoms(self) -> int:
        return len(self._atom_provenance)

    def relation_version(self, relation: str) -> int:
        """Change counter of one relation (see ``_relation_versions``)."""
        return self._relation_versions[relation]

    # ------------------------------------------------------------------ deltas
    def relation_log(self, relation: str) -> List[Atom]:
        """Append-only log of atoms added / re-canonicalised in a relation.

        The semi-naive engine remembers the length at a constraint's last
        attempt; the slice past that watermark is the relation's delta.
        Entries may be stale (re-canonicalised away since being logged) —
        consumers filter through :meth:`contains_atom`.
        """
        return self._delta_log[relation]

    def shape_log(self) -> List[int]:
        """Append-only log of classes that gained a shape (``size`` deltas)."""
        return self._shape_delta_log

    # ------------------------------------------------------------------ rebuild
    def rebuild(self) -> None:
        """Re-canonicalise atoms affected by pending unions, to a fixpoint.

        Incremental e-graph repair: for every retired class, exactly the
        atoms mentioning it (per-class occurrence index) are removed,
        re-canonicalised and re-inserted; re-insertion may trigger further
        congruence unions, which queue more repair work until the instance
        is congruence-closed again.  Cost is proportional to the atoms
        actually touched, never to the whole instance.
        """
        while self._pending_unions:
            keep, drop = self._pending_unions.pop()
            affected = self._atoms_by_class.pop(drop, None)
            if not affected:
                continue
            self.version += 1
            for atom in list(affected):
                labels = self._remove_atom(atom)
                canonical = self._canonical_args(atom.args)
                # The relation's canonical atom set changed, so premise
                # joins over it may produce new matches.
                self._relation_versions[atom.relation] += 1
                self._insert_canonical(atom.relation, canonical, labels)

    # ------------------------------------------------------------------ helpers
    def leaf_name(self, cid: int) -> Optional[str]:
        """The storage name of a class, if it has a ``name`` atom."""
        for atom in self.atoms_with("name", 0, cid):
            return atom.args[1].value
        return None

    def leaf_names(self, cid: int) -> List[str]:
        """All storage names attached to a class (base matrices and views)."""
        return sorted(atom.args[1].value for atom in self.atoms_with("name", 0, cid))

    def class_of_name(self, name: str) -> Optional[int]:
        """The class carrying ``name(M, name)``, if any."""
        for atom in self.atoms_with("name", 1, Const(name)):
            return self.find(atom.args[0])
        return None

    def types_of(self, cid: int) -> Set[str]:
        """Structural type tags attached to a class via ``type`` atoms."""
        return {atom.args[1].value for atom in self.atoms_with("type", 0, cid)}

    def producers(self, cid: int) -> List[Atom]:
        """Operation atoms whose output positions include this class."""
        root = self.find(cid)
        result = []
        for atom in self._atoms_by_class.get(root, ()):
            spec = relation_spec(atom.relation)
            for pos in spec.output_positions:
                arg = atom.args[pos]
                if isinstance(arg, int) and self.find(arg) == root:
                    result.append(atom)
                    break
        return result

    # ------------------------------------------------------------------ pickling
    def __getstate__(self) -> dict:
        """Picklable snapshot (for the parallel chase's worker processes).

        The interner rebuilds from the stored atoms on the other side; the
        defaultdicts are converted to plain dicts so no factory lambdas leak
        into the payload.
        """
        return {
            "parent": dict(self._parent),
            "next_id": self._next_id,
            "atoms": [
                (atom.relation, atom.args, sorted(labels))
                for atom, labels in self._atom_provenance.items()
            ],
            "shape": dict(self._shape),
            "scalar_value": dict(self._scalar_value),
            "version": self.version,
            "shape_version": self.shape_version,
            "relation_versions": dict(self._relation_versions),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        self._parent = dict(state["parent"])
        self._next_id = int(state["next_id"])
        self._num_classes = len({self.find(cid) for cid in self._parent})
        for relation, args, labels in state["atoms"]:
            atom = self._interner.intern(relation, tuple(args))
            self._atom_provenance[atom] = set(labels)
            self._by_relation[relation].add(atom)
            for position, arg in enumerate(atom.args):
                self._by_position[(relation, position, arg)].add(atom)
                if isinstance(arg, int):
                    self._atoms_by_class[arg].add(atom)
            key = self._congruence_key(atom)
            if key is not None:
                self._congruence.setdefault(key, atom)
        self._shape = {int(cid): (int(s[0]), int(s[1])) for cid, s in state["shape"].items()}
        self._scalar_value = dict(state["scalar_value"])
        self.version = int(state["version"])
        self.shape_version = int(state["shape_version"])
        for relation, version in state["relation_versions"].items():
            self._relation_versions[relation] = version

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VremInstance(classes={self.num_classes()}, atoms={self.num_atoms()})"
