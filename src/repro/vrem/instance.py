"""The chased VREM instance.

A :class:`VremInstance` is the ground structure that the paper's reduction
manipulates: a set of atoms over the VREM relations whose ID arguments denote
*equivalence classes* of expressions (§6.2.1).  The functional EGDs of
§6.2.3 (every operation relation is functional in its inputs) are maintained
incrementally as a congruence: whenever two atoms of a functional relation
agree on their canonical input arguments, their output classes are merged,
and after every merge the instance re-canonicalises itself to a fixpoint.

Besides the atoms, the instance tracks per-class *shape* metadata (the
``size`` relation of Table 1), optional known scalar values and, per atom, a
set of provenance labels recording which constraint or encoding step
introduced it — the information the provenance-aware backchase reads off.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ChaseError
from repro.vrem.atoms import Atom, Const, Var
from repro.vrem.schema import VREM_SCHEMA, infer_output_shapes, relation_spec

Shape = Tuple[int, int]
Term = object  # int (class ID) or Const


class VremInstance:
    """Congruence-closed set of ground VREM atoms over equivalence classes."""

    def __init__(self):
        self._parent: Dict[int, int] = {}
        self._next_id = 0
        self._atom_provenance: Dict[Atom, Set[str]] = {}
        self._by_relation: Dict[str, Set[Atom]] = defaultdict(set)
        self._by_position: Dict[Tuple[str, int, object], Set[Atom]] = defaultdict(set)
        self._congruence: Dict[Tuple, Atom] = {}
        self._shape: Dict[int, Shape] = {}
        self._scalar_value: Dict[int, float] = {}
        self._pending_unions: List[Tuple[int, int]] = []
        #: Monotonically increasing counter, bumped on every structural change;
        #: used by callers (e.g. the saturation engine) to detect staleness.
        self.version = 0
        #: Per-relation change counters: bumped when a relation gains an atom
        #: or one of its atoms is re-canonicalised after a class merge.  The
        #: indexed saturation engine compares these against the values it saw
        #: when a constraint was last attempted, so unaffected constraints
        #: are skipped entirely.
        self._relation_versions: Dict[str, int] = defaultdict(int)
        #: Counter for shape-metadata changes (``size`` atoms match against
        #: metadata, not stored atoms, so they need their own staleness signal).
        self.shape_version = 0

    # ------------------------------------------------------------------ classes
    def new_class(self) -> int:
        """Allocate a fresh equivalence-class identifier."""
        cid = self._next_id
        self._next_id += 1
        self._parent[cid] = cid
        return cid

    def find(self, cid: int) -> int:
        """Canonical representative of a class (with path compression)."""
        root = cid
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cid] != root:
            self._parent[cid], cid = root, self._parent[cid]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge two classes and return the surviving representative.

        Shape and scalar-value metadata are reconciled; conflicting shapes
        indicate an unsound constraint and raise :class:`ChaseError`.
        The heavy re-canonicalisation work is deferred to :meth:`rebuild`.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        # Keep the smaller id as representative for determinism.
        keep, drop = (ra, rb) if ra < rb else (rb, ra)
        shape_keep, shape_drop = self._shape.get(keep), self._shape.get(drop)
        if shape_keep is not None and shape_drop is not None and shape_keep != shape_drop:
            raise ChaseError(
                f"cannot merge classes {keep} and {drop}: shapes {shape_keep} != {shape_drop}"
            )
        if shape_keep is None and shape_drop is not None:
            self._shape[keep] = shape_drop
            # The surviving class just became shape-matchable.
            self.shape_version += 1
        value_keep, value_drop = self._scalar_value.get(keep), self._scalar_value.get(drop)
        if value_keep is None and value_drop is not None:
            self._scalar_value[keep] = value_drop
        self._parent[drop] = keep
        self._pending_unions.append((keep, drop))
        return keep

    def same_class(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def classes(self) -> Set[int]:
        """All canonical class representatives currently alive."""
        return {self.find(cid) for cid in self._parent}

    def num_classes(self) -> int:
        return len(self.classes())

    # ------------------------------------------------------------------ metadata
    def set_shape(self, cid: int, shape: Optional[Shape]) -> None:
        if shape is None:
            return
        root = self.find(cid)
        known = self._shape.get(root)
        shape = (int(shape[0]), int(shape[1]))
        if known is not None and known != shape:
            raise ChaseError(f"class {root} already has shape {known}, cannot set {shape}")
        if known is None:
            self.shape_version += 1
        self._shape[root] = shape

    def shape(self, cid: int) -> Optional[Shape]:
        return self._shape.get(self.find(cid))

    def set_scalar_value(self, cid: int, value: float) -> None:
        self._scalar_value[self.find(cid)] = float(value)

    def scalar_value(self, cid: int) -> Optional[float]:
        return self._scalar_value.get(self.find(cid))

    # ------------------------------------------------------------------ atoms
    def _canonical_args(self, args: Sequence[Term]) -> Tuple[Term, ...]:
        canonical = []
        for arg in args:
            if isinstance(arg, Var):
                raise ChaseError("ground instances cannot contain variables")
            if isinstance(arg, bool):
                raise ChaseError("boolean atom arguments are not supported")
            if isinstance(arg, int):
                canonical.append(self.find(arg))
            elif isinstance(arg, Const):
                canonical.append(arg)
            else:
                canonical.append(Const(arg))
        return tuple(canonical)

    def add_atom(
        self,
        relation: str,
        args: Sequence[Term],
        provenance: Optional[Iterable[str]] = None,
    ) -> Atom:
        """Insert a ground atom (idempotent), maintaining congruence.

        ``size`` atoms are intercepted and stored as shape metadata instead
        of as ordinary atoms (the matcher reconstitutes them on demand).
        Returns the canonical atom as stored.
        """
        if relation not in VREM_SCHEMA:
            raise ChaseError(f"unknown VREM relation {relation!r}")
        canonical = self._canonical_args(args)
        if relation == "size":
            cid, rows, cols = canonical
            if isinstance(rows, Const) and isinstance(cols, Const):
                self.set_shape(cid, (int(rows.value), int(cols.value)))
            atom = Atom("size", canonical)
            return atom
        atom = Atom(relation, canonical)
        labels = set(provenance or ())
        existing = self._atom_provenance.get(atom)
        if existing is not None:
            existing |= labels
            return atom
        self._atom_provenance[atom] = labels
        self._by_relation[relation].add(atom)
        for position, arg in enumerate(canonical):
            self._by_position[(relation, position, arg)].add(atom)
        self.version += 1
        self._relation_versions[relation] += 1
        self._apply_congruence(atom)
        self._infer_shapes(atom)
        if self._pending_unions:
            self.rebuild()
        return atom

    def _congruence_key(self, atom: Atom) -> Optional[Tuple]:
        spec = relation_spec(atom.relation)
        if not spec.functional:
            return None
        key_args = tuple(atom.args[pos] for pos in spec.input_positions)
        return (atom.relation, key_args)

    def _apply_congruence(self, atom: Atom) -> None:
        key = self._congruence_key(atom)
        if key is None:
            return
        other = self._congruence.get(key)
        if other is None:
            self._congruence[key] = atom
            return
        spec = relation_spec(atom.relation)
        for pos in spec.output_positions:
            a, b = atom.args[pos], other.args[pos]
            if isinstance(a, int) and isinstance(b, int):
                self.union(a, b)

    def _infer_shapes(self, atom: Atom) -> None:
        spec = relation_spec(atom.relation)
        if spec.is_fact:
            if atom.relation == "identity":
                # identity(I): square; exact size may be set separately.
                return
            return
        input_shapes = []
        const_args = []
        for pos in spec.input_positions:
            arg = atom.args[pos]
            if isinstance(arg, int):
                input_shapes.append(self.shape(arg))
            else:
                input_shapes.append((1, 1))
                const_args.append(arg.value)
        out_shapes = infer_output_shapes(atom.relation, input_shapes, const_args)
        for pos, shape in zip(spec.output_positions, out_shapes):
            arg = atom.args[pos]
            if shape is not None and isinstance(arg, int) and self.shape(arg) is None:
                self.set_shape(arg, shape)

    def add_op(
        self,
        relation: str,
        inputs: Sequence[Term],
        provenance: Optional[Iterable[str]] = None,
    ) -> Tuple[int, ...]:
        """Hash-consing insertion of an operation atom.

        If an atom of ``relation`` with the given (canonicalised) inputs
        already exists, its output class IDs are returned; otherwise fresh
        classes are allocated for the outputs, the atom is added, and the
        new IDs are returned.
        """
        spec = relation_spec(relation)
        if spec.is_fact:
            raise ChaseError(f"{relation!r} is a fact relation, not an operation")
        canonical_inputs = self._canonical_args(inputs)
        key = (relation, canonical_inputs)
        existing = self._congruence.get(key)
        if existing is not None:
            return tuple(self.find(existing.args[pos]) for pos in spec.output_positions)
        outputs = tuple(self.new_class() for _ in spec.output_positions)
        args: List[Term] = [None] * spec.arity
        for pos, value in zip(spec.input_positions, canonical_inputs):
            args[pos] = value
        for pos, value in zip(spec.output_positions, outputs):
            args[pos] = value
        self.add_atom(relation, args, provenance)
        return tuple(self.find(out) for out in outputs)

    def has_atom(self, relation: str, args: Sequence[Term]) -> bool:
        canonical = self._canonical_args(args)
        return Atom(relation, canonical) in self._atom_provenance

    def atoms(self, relation: Optional[str] = None) -> Iterator[Atom]:
        """Iterate over stored atoms, optionally restricted to one relation."""
        if relation is not None:
            yield from list(self._by_relation.get(relation, ()))
            return
        yield from list(self._atom_provenance)

    def atom_count(self, relation: str) -> int:
        """Number of stored atoms of one relation (cheap)."""
        return len(self._by_relation.get(relation, ()))

    def atoms_with(self, relation: str, position: int, value) -> Set[Atom]:
        """Atoms of ``relation`` whose ``position``-th argument equals ``value``.

        ``value`` must already be canonical (a class representative or a
        :class:`Const`); this is the index the homomorphism matcher joins on.
        """
        if isinstance(value, int):
            value = self.find(value)
        return self._by_position.get((relation, position, value), set())

    def provenance(self, atom: Atom) -> FrozenSet[str]:
        canonical = Atom(atom.relation, self._canonical_args(atom.args))
        return frozenset(self._atom_provenance.get(canonical, ()))

    def num_atoms(self) -> int:
        return len(self._atom_provenance)

    def relation_version(self, relation: str) -> int:
        """Change counter of one relation (see ``_relation_versions``)."""
        return self._relation_versions[relation]

    # ------------------------------------------------------------------ rebuild
    def rebuild(self) -> None:
        """Re-canonicalise all atoms after unions, to a congruence fixpoint."""
        while self._pending_unions:
            self._pending_unions.clear()
            old_atoms = self._atom_provenance
            self._atom_provenance = {}
            self._by_relation = defaultdict(set)
            self._by_position = defaultdict(set)
            self._congruence = {}
            self.version += 1
            # Re-canonicalise metadata keyed by class id.
            for table in (self._shape, self._scalar_value):
                entries = list(table.items())
                table.clear()
                for cid, value in entries:
                    root = self.find(cid)
                    if root in table and table[root] != value and table is self._shape:
                        raise ChaseError(
                            f"conflicting shapes {table[root]} vs {value} while merging class {root}"
                        )
                    table.setdefault(root, value)
            for atom, labels in old_atoms.items():
                canonical = Atom(atom.relation, self._canonical_args(atom.args))
                if canonical != atom:
                    # The relation's canonical atom set changed, so premise
                    # joins over it may produce new matches.
                    self._relation_versions[atom.relation] += 1
                existing = self._atom_provenance.get(canonical)
                if existing is not None:
                    existing |= labels
                else:
                    self._atom_provenance[canonical] = set(labels)
                    self._by_relation[canonical.relation].add(canonical)
                    for position, arg in enumerate(canonical.args):
                        self._by_position[(canonical.relation, position, arg)].add(canonical)
                    self._apply_congruence(canonical)
                    self._infer_shapes(canonical)

    # ------------------------------------------------------------------ helpers
    def leaf_name(self, cid: int) -> Optional[str]:
        """The storage name of a class, if it has a ``name`` atom."""
        root = self.find(cid)
        for atom in self._by_relation.get("name", ()):
            if self.find(atom.args[0]) == root:
                return atom.args[1].value
        return None

    def leaf_names(self, cid: int) -> List[str]:
        """All storage names attached to a class (base matrices and views)."""
        root = self.find(cid)
        names = []
        for atom in self._by_relation.get("name", ()):
            if self.find(atom.args[0]) == root:
                names.append(atom.args[1].value)
        return sorted(names)

    def class_of_name(self, name: str) -> Optional[int]:
        """The class carrying ``name(M, name)``, if any."""
        for atom in self._by_relation.get("name", ()):
            if atom.args[1] == Const(name):
                return self.find(atom.args[0])
        return None

    def types_of(self, cid: int) -> Set[str]:
        """Structural type tags attached to a class via ``type`` atoms."""
        root = self.find(cid)
        return {
            atom.args[1].value
            for atom in self._by_relation.get("type", ())
            if self.find(atom.args[0]) == root
        }

    def producers(self, cid: int) -> List[Atom]:
        """Operation atoms whose output positions include this class."""
        root = self.find(cid)
        result = []
        for relation, atoms in self._by_relation.items():
            spec = relation_spec(relation)
            if not spec.output_positions:
                continue
            for atom in atoms:
                for pos in spec.output_positions:
                    arg = atom.args[pos]
                    if isinstance(arg, int) and self.find(arg) == root:
                        result.append(atom)
                        break
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VremInstance(classes={self.num_classes()}, atoms={self.num_atoms()})"
