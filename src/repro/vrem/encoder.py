"""``enc_LA``: encoding LA expressions on the VREM schema (paper §6.2.2).

The encoder walks an :class:`~repro.lang.matrix_expr.Expr` bottom-up and
produces, inside a :class:`~repro.vrem.instance.VremInstance`,

* one ``name`` atom per referenced base matrix (plus its ``size``/shape and
  ``type`` metadata, read from the catalog when one is supplied), and
* one operation atom per AST node, whose output argument is the equivalence
  class standing for the node's value.

Because the instance hash-conses operation atoms (congruence), encoding the
same sub-expression twice yields the same class — exactly the paper's
"two expressions are assigned the same ID iff they yield value-based-equal
matrices" reading, restricted to syntactic equality until the chase adds
semantic equalities.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.data.catalog import Catalog
from repro.data.matrix import MatrixType
from repro.exceptions import EncodingError
from repro.lang import matrix_expr as mx
from repro.vrem.atoms import Const
from repro.vrem.instance import VremInstance

#: Expression classes encoded by a single operation atom whose relation name
#: equals ``Expr.op``.
_SIMPLE_UNARY = {
    "tr", "inv_m", "exp", "adj", "diag", "rev",
    "row_sums", "col_sums", "row_means", "col_means",
    "row_max", "col_max", "row_min", "col_min", "row_var", "col_var",
    "det", "trace", "sum", "mean", "var", "min", "max",
}

_SIMPLE_BINARY = {
    "multi_m", "add_m", "sub_m", "div_m", "multi_e", "multi_ms",
    "sum_d", "product_d", "cbind", "rbind",
}

#: Decomposition accessor op -> (relation, output index within the relation's
#: output positions).
_DECOMPOSITIONS = {
    "cho": ("cho", 0),
    "qr_q": ("qr", 0),
    "qr_r": ("qr", 1),
    "lu_l": ("lu", 0),
    "lu_u": ("lu", 1),
    "lup_l": ("lup", 0),
    "lup_u": ("lup", 1),
    "lup_p": ("lup", 2),
}


class LAEncoder:
    """Stateful encoder producing class IDs inside one instance."""

    def __init__(self, instance: VremInstance, catalog: Optional[Catalog] = None,
                 provenance: str = "enc"):
        self.instance = instance
        self.catalog = catalog
        self.provenance = provenance
        self._memo: Dict[mx.Expr, int] = {}

    # -- leaves ----------------------------------------------------------------
    def _encode_matrix_ref(self, expr: mx.MatrixRef) -> int:
        existing = self.instance.class_of_name(expr.name)
        if existing is not None:
            return existing
        cid = self.instance.new_class()
        self.instance.add_atom("name", (cid, Const(expr.name)), (self.provenance,))
        if self.catalog is not None and self.catalog.has_matrix(expr.name):
            meta = self.catalog.meta(expr.name)
            self.instance.set_shape(cid, meta.shape)
            if meta.matrix_type != MatrixType.GENERAL:
                self.instance.add_atom(
                    "type", (cid, Const(meta.matrix_type)), (self.provenance,)
                )
        return cid

    def _encode_scalar_const(self, expr: mx.ScalarConst) -> int:
        for atom in self.instance.atoms_with("scalar_const", 1, Const(expr.value)):
            return self.instance.find(atom.args[0])
        cid = self.instance.new_class()
        self.instance.add_atom("scalar_const", (cid, Const(expr.value)), (self.provenance,))
        self.instance.set_shape(cid, (1, 1))
        self.instance.set_scalar_value(cid, expr.value)
        return cid

    def _encode_scalar_ref(self, expr: mx.ScalarRef) -> int:
        for atom in self.instance.atoms_with("scalar_name", 1, Const(expr.name)):
            return self.instance.find(atom.args[0])
        cid = self.instance.new_class()
        self.instance.add_atom("scalar_name", (cid, Const(expr.name)), (self.provenance,))
        self.instance.set_shape(cid, (1, 1))
        if self.catalog is not None and self.catalog.has_scalar(expr.name):
            self.instance.set_scalar_value(cid, self.catalog.scalar(expr.name))
        return cid

    def _encode_identity(self, expr: mx.Identity) -> int:
        for atom in self.instance.atoms("identity"):
            cid = self.instance.find(atom.args[0])
            if self.instance.shape(cid) == (expr.n, expr.n):
                return cid
        cid = self.instance.new_class()
        self.instance.add_atom("identity", (cid,), (self.provenance,))
        self.instance.set_shape(cid, (expr.n, expr.n))
        return cid

    def _encode_zero(self, expr: mx.Zero) -> int:
        for atom in self.instance.atoms("zero"):
            cid = self.instance.find(atom.args[0])
            if self.instance.shape(cid) == (expr.rows, expr.cols):
                return cid
        cid = self.instance.new_class()
        self.instance.add_atom("zero", (cid,), (self.provenance,))
        self.instance.set_shape(cid, (expr.rows, expr.cols))
        return cid

    # -- main dispatch ------------------------------------------------------------
    def encode(self, expr: mx.Expr) -> int:
        """Encode an expression and return the class ID of its value."""
        memoised = self._memo.get(expr)
        if memoised is not None:
            return self.instance.find(memoised)

        if isinstance(expr, mx.MatrixRef):
            cid = self._encode_matrix_ref(expr)
        elif isinstance(expr, mx.ScalarConst):
            cid = self._encode_scalar_const(expr)
        elif isinstance(expr, mx.ScalarRef):
            cid = self._encode_scalar_ref(expr)
        elif isinstance(expr, mx.Identity):
            cid = self._encode_identity(expr)
        elif isinstance(expr, mx.Zero):
            cid = self._encode_zero(expr)
        elif isinstance(expr, mx.MatPow):
            child = self.encode(expr.child)
            (cid,) = self.instance.add_op(
                "mat_pow", (child, Const(expr.exponent)), (self.provenance,)
            )
        elif expr.op in _DECOMPOSITIONS:
            relation, out_index = _DECOMPOSITIONS[expr.op]
            child = self.encode(expr.children[0])
            outputs = self.instance.add_op(relation, (child,), (self.provenance,))
            cid = outputs[out_index]
        elif expr.op in _SIMPLE_UNARY:
            child = self.encode(expr.children[0])
            (cid,) = self.instance.add_op(expr.op, (child,), (self.provenance,))
        elif expr.op in _SIMPLE_BINARY:
            left = self.encode(expr.children[0])
            right = self.encode(expr.children[1])
            (cid,) = self.instance.add_op(expr.op, (left, right), (self.provenance,))
        else:
            raise EncodingError(f"cannot encode operator {expr.op!r} on VREM")

        self._memo[expr] = cid
        return self.instance.find(cid)


def encode_expression(
    expr: mx.Expr,
    instance: Optional[VremInstance] = None,
    catalog: Optional[Catalog] = None,
) -> Tuple[VremInstance, int]:
    """One-shot helper: encode ``expr`` and return ``(instance, root class)``."""
    instance = instance if instance is not None else VremInstance()
    encoder = LAEncoder(instance, catalog)
    root = encoder.encode(expr)
    return instance, root
