"""Terms and atoms of the VREM encoding.

Three kinds of terms appear in atoms:

* **class IDs** — plain ``int``s naming an equivalence class of expressions
  in a :class:`~repro.vrem.instance.VremInstance`;
* **constants** — :class:`Const`, wrapping matrix storage names, numeric
  literals and structural type tags;
* **variables** — :class:`Var`, used only inside constraints (TGDs / EGDs)
  and conjunctive queries, never inside a ground instance.

All three are immutable value objects with **cached hashes**: atoms are the
keys of every index the congruence closure and the homomorphism matcher
maintain, so hashing them is the single hottest primitive of the chase.
Ground atoms are additionally *hash-consed* per instance (see
:meth:`repro.vrem.instance.VremInstance`): structurally equal atoms are one
object, which turns the equality checks inside set/dict probes into pointer
comparisons.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union


class Const:
    """A constant term (matrix name, scalar value, type tag, dimension)."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: object):
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((Const, value)))

    def __setattr__(self, name, _value):  # pragma: no cover - immutability guard
        raise AttributeError(f"Const is immutable; cannot set {name!r}")

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, Const) and self.value == other.value

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # __slots__ + the immutability guard break default pickling; rebuild
        # through the constructor (also re-derives the cached hash, which is
        # not stable across processes for str values).
        return (Const, (self.value,))

    def __repr__(self) -> str:
        return f"~{self.value!r}"


class Var:
    """A variable term; only meaningful inside constraints and queries."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((Var, name)))

    def __setattr__(self, name, _value):  # pragma: no cover - immutability guard
        raise AttributeError(f"Var is immutable; cannot set {name!r}")

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, Var) and self.name == other.name

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Var, (self.name,))

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = Union[int, Const, Var]


class Atom:
    """A (possibly non-ground) atom ``relation(arg_1, ..., arg_n)``."""

    __slots__ = ("relation", "args", "_hash")

    def __init__(self, relation: str, args: Tuple[Term, ...]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "_hash", hash((relation, self.args)))

    def __setattr__(self, name, _value):  # pragma: no cover - immutability guard
        raise AttributeError(f"Atom is immutable; cannot set {name!r}")

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Atom)
            and self._hash == other._hash
            and self.relation == other.relation
            and self.args == other.args
        )

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Atom, (self.relation, self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.relation}({inner})"

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return not any(isinstance(arg, Var) for arg in self.args)

    def variables(self) -> Tuple[Var, ...]:
        """The variables occurring in the atom, in argument order."""
        return tuple(arg for arg in self.args if isinstance(arg, Var))


class AtomInterner:
    """Per-instance hash-consing table for ground atoms.

    :meth:`intern` returns *the* canonical :class:`Atom` object for a
    (relation, args) pair, allocating it on first sight.  The table is keyed
    by the atom's own hashable identity, so interning an already-canonical
    atom is a single dict probe; after a class merge the re-canonicalised
    atom hash-conses to a (possibly pre-existing) new object and the stale
    one is simply dropped from the table.
    """

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, Tuple[Term, ...]], Atom] = {}

    def intern(self, relation: str, args: Tuple[Term, ...]) -> Atom:
        key = (relation, args)
        atom = self._table.get(key)
        if atom is None:
            atom = Atom(relation, args)
            self._table[key] = atom
        return atom

    def discard(self, atom: Atom) -> None:
        """Forget a stale (pre-merge) canonical form."""
        self._table.pop((atom.relation, atom.args), None)

    def __len__(self) -> int:
        return len(self._table)


def make_atom(relation: str, *args: Term) -> Atom:
    """Convenience constructor, wrapping raw strings/floats as constants.

    Integers are interpreted as class IDs (the instance's convention), so
    numeric constants must be passed as :class:`Const` explicitly or as
    floats/strings.
    """
    wrapped = []
    for arg in args:
        if isinstance(arg, (Const, Var, int)) and not isinstance(arg, bool):
            wrapped.append(arg)
        else:
            wrapped.append(Const(arg))
    return Atom(relation, tuple(wrapped))
