"""Terms and atoms of the VREM encoding.

Three kinds of terms appear in atoms:

* **class IDs** — plain ``int``s naming an equivalence class of expressions
  in a :class:`~repro.vrem.instance.VremInstance`;
* **constants** — :class:`Const`, wrapping matrix storage names, numeric
  literals and structural type tags;
* **variables** — :class:`Var`, used only inside constraints (TGDs / EGDs)
  and conjunctive queries, never inside a ground instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class Const:
    """A constant term (matrix name, scalar value, type tag, dimension)."""

    value: object

    def __repr__(self) -> str:
        return f"~{self.value!r}"


@dataclass(frozen=True)
class Var:
    """A variable term; only meaningful inside constraints and queries."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = Union[int, Const, Var]


@dataclass(frozen=True)
class Atom:
    """A (possibly non-ground) atom ``relation(arg_1, ..., arg_n)``."""

    relation: str
    args: Tuple[Term, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.relation}({inner})"

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return not any(isinstance(arg, Var) for arg in self.args)

    def variables(self) -> Tuple[Var, ...]:
        """The variables occurring in the atom, in argument order."""
        return tuple(arg for arg in self.args if isinstance(arg, Var))


def make_atom(relation: str, *args: Term) -> Atom:
    """Convenience constructor, wrapping raw strings/floats as constants.

    Integers are interpreted as class IDs (the instance's convention), so
    numeric constants must be passed as :class:`Const` explicitly or as
    floats/strings.
    """
    wrapped = []
    for arg in args:
        if isinstance(arg, (Const, Var, int)) and not isinstance(arg, bool):
            wrapped.append(arg)
        else:
            wrapped.append(Const(arg))
    return Atom(relation, tuple(wrapped))
