"""``dec_LA``: decoding VREM atoms back into LA expression nodes (§5).

The extraction step of the optimizer walks the saturated instance choosing,
for every class, a producing atom (or a leaf fact); this module provides the
single-step decoding of one chosen atom into one AST node, given the already
decoded sub-expressions of its input classes.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import DecodingError
from repro.lang import matrix_expr as mx
from repro.vrem.atoms import Atom, Const
from repro.vrem.schema import relation_spec

_UNARY_NODES = {
    "tr": mx.Transpose,
    "inv_m": mx.Inverse,
    "exp": mx.MatExp,
    "adj": mx.Adjoint,
    "diag": mx.Diag,
    "rev": mx.Rev,
    "row_sums": mx.RowSums,
    "col_sums": mx.ColSums,
    "row_means": mx.RowMeans,
    "col_means": mx.ColMeans,
    "row_max": mx.RowMax,
    "col_max": mx.ColMax,
    "row_min": mx.RowMin,
    "col_min": mx.ColMin,
    "row_var": mx.RowVar,
    "col_var": mx.ColVar,
    "det": mx.Det,
    "trace": mx.Trace,
    "sum": mx.SumAll,
    "mean": mx.MeanAll,
    "var": mx.VarAll,
    "min": mx.MinAll,
    "max": mx.MaxAll,
}

_BINARY_NODES = {
    "multi_m": mx.MatMul,
    "add_m": mx.Add,
    "sub_m": mx.Sub,
    "div_m": mx.ElemDiv,
    "multi_e": mx.Hadamard,
    "multi_ms": mx.ScalarMul,
    "sum_d": mx.DirectSum,
    "product_d": mx.DirectProduct,
    "cbind": mx.CBind,
    "rbind": mx.RBind,
}

_DECOMPOSITION_NODES = {
    ("cho", 0): mx.CholeskyFactor,
    ("qr", 0): mx.QRFactorQ,
    ("qr", 1): mx.QRFactorR,
    ("lu", 0): mx.LUFactorL,
    ("lu", 1): mx.LUFactorU,
    ("lup", 0): mx.LUPFactorL,
    ("lup", 1): mx.LUPFactorU,
    ("lup", 2): mx.LUPFactorP,
}

_SCALAR_ARITHMETIC = {"add_s", "multi_s", "inv_s", "pow_s"}


def decode_atom_to_expr(
    atom: Atom,
    output_index: int,
    child_exprs: Sequence[mx.Expr],
) -> mx.Expr:
    """Decode one producing atom into one expression node.

    Parameters
    ----------
    atom:
        The operation atom chosen as the derivation of the target class.
    output_index:
        Which of the relation's output positions the target class occupies
        (0 for all single-output relations).
    child_exprs:
        Already decoded expressions for the atom's *input* class arguments,
        in input-position order.  Constant input arguments (e.g. the exponent
        of ``mat_pow``) are not included — they are read from the atom.
    """
    relation = atom.relation
    spec = relation_spec(relation)

    if relation in _UNARY_NODES:
        return _UNARY_NODES[relation](child_exprs[0])
    if relation in _BINARY_NODES:
        return _BINARY_NODES[relation](child_exprs[0], child_exprs[1])
    if relation == "mat_pow":
        const = atom.args[spec.input_positions[1]]
        if not isinstance(const, Const):
            raise DecodingError("mat_pow exponent must be a constant")
        return mx.MatPow(child_exprs[0], int(const.value))
    key = (relation, output_index)
    if key in _DECOMPOSITION_NODES:
        return _DECOMPOSITION_NODES[key](child_exprs[0])
    if relation in _SCALAR_ARITHMETIC:
        # Scalar arithmetic is decoded with the matrix-level node set so the
        # resulting expression stays executable: a + b and a * b over 1x1
        # matrices, 1/a as an element-wise division, a^k as repeated product.
        if relation == "add_s":
            return mx.Add(child_exprs[0], child_exprs[1])
        if relation == "multi_s":
            return mx.Hadamard(child_exprs[0], child_exprs[1])
        if relation == "inv_s":
            return mx.ElemDiv(mx.ScalarConst(1.0), child_exprs[0])
        const = atom.args[spec.input_positions[1]]
        return mx.MatPow(child_exprs[0], int(const.value))
    raise DecodingError(f"cannot decode relation {relation!r} into an expression")


def decode_fact_to_expr(atom: Atom, shape=None) -> mx.Expr:
    """Decode a leaf fact atom (name / scalar / identity / zero) into a leaf node."""
    if atom.relation == "name":
        return mx.MatrixRef(atom.args[1].value)
    if atom.relation == "scalar_const":
        return mx.ScalarConst(float(atom.args[1].value))
    if atom.relation == "scalar_name":
        return mx.ScalarRef(atom.args[1].value)
    if atom.relation == "identity":
        if shape is None:
            raise DecodingError("cannot decode identity atom without a known shape")
        return mx.Identity(shape[0])
    if atom.relation == "zero":
        if shape is None:
            raise DecodingError("cannot decode zero atom without a known shape")
        return mx.Zero(shape[0], shape[1])
    raise DecodingError(f"atom {atom!r} is not a decodable leaf fact")
