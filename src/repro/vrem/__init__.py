"""VREM: the Virtual Relational Encoding of Matrices (paper §6.2).

LA expressions are encoded as conjunctive structures over a virtual
relational schema whose relations (Table 1) describe LA operations as
uninterpreted functions: ``multi_m(M, N, R)`` states that R is the result of
the matrix product M·N, ``tr(M, R)`` that R is Mᵀ, and so on.  The arguments
are *equivalence-class identifiers*: two expressions get the same identifier
iff they denote value-equal matrices (§6.2.1).

The package provides:

* :mod:`repro.vrem.atoms` — terms (class IDs, constants, variables) and atoms;
* :mod:`repro.vrem.schema` — the VREM relation catalogue with arities and
  functional-dependency information (which drives congruence closure);
* :mod:`repro.vrem.instance` — the chased instance: a congruence-closed set
  of ground atoms with union-find over class IDs, per-class shape metadata
  and per-atom provenance;
* :mod:`repro.vrem.encoder` — ``enc_LA``: expression → instance encoding;
* :mod:`repro.vrem.decoder` — ``dec_LA``: atom → expression-node decoding
  used by the extraction step.
"""

from repro.vrem.atoms import Const, Var, Atom, make_atom
from repro.vrem.schema import RelationSpec, VREM_SCHEMA, relation_spec, is_output_position
from repro.vrem.instance import VremInstance
from repro.vrem.encoder import LAEncoder, encode_expression
from repro.vrem.decoder import decode_atom_to_expr

__all__ = [
    "Const",
    "Var",
    "Atom",
    "make_atom",
    "RelationSpec",
    "VREM_SCHEMA",
    "relation_spec",
    "is_output_position",
    "VremInstance",
    "LAEncoder",
    "encode_expression",
    "decode_atom_to_expr",
]
