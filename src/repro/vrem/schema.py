"""The VREM relation catalogue.

Each relation of Table 1 (plus the few auxiliary relations needed by the
Appendix A/B constraints) is described by a :class:`RelationSpec` recording

* its arity,
* which argument positions are *inputs* and which are *outputs* of the
  encoded operation, and
* how the output dimensions derive from the input dimensions.

The input/output split is what turns the functional EGDs of §6.2.3
(I_multiM etc. — "the products of pairwise equal matrices are equal") into a
congruence: whenever two atoms of the same relation agree on all input
positions, their output classes are merged by the instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

Shape = Tuple[int, int]


@dataclass(frozen=True)
class RelationSpec:
    """Static description of one VREM relation."""

    name: str
    arity: int
    input_positions: Tuple[int, ...]
    output_positions: Tuple[int, ...]
    scalar_output: bool = False
    #: True for the "fact" relations (name/type/zero/identity/...) that carry
    #: no operation semantics and therefore no congruence rule.
    is_fact: bool = False

    @property
    def functional(self) -> bool:
        """Whether equal inputs force equal outputs (congruence applies)."""
        return bool(self.output_positions) and not self.is_fact


def _op(name: str, arity: int, inputs: Sequence[int], outputs: Sequence[int], scalar=False) -> RelationSpec:
    return RelationSpec(name, arity, tuple(inputs), tuple(outputs), scalar_output=scalar)


def _fact(name: str, arity: int) -> RelationSpec:
    return RelationSpec(name, arity, tuple(range(arity)), (), is_fact=True)


_SPECS = [
    # --- facts about classes -------------------------------------------------
    _fact("name", 2),          # name(M, "M.csv")
    _fact("scalar_const", 2),  # scalar_const(S, 2.5)
    _fact("scalar_name", 2),   # scalar_name(S, "s1")
    _fact("zero", 1),          # zero(O)
    _fact("identity", 1),      # identity(I)
    _fact("type", 2),          # type(M, "S"|"L"|"U"|"O"|"P")
    _fact("size", 3),          # size(M, k, z) — matched against shape metadata
    # --- binary matrix operations --------------------------------------------
    _op("multi_m", 3, (0, 1), (2,)),
    _op("add_m", 3, (0, 1), (2,)),
    _op("sub_m", 3, (0, 1), (2,)),
    _op("div_m", 3, (0, 1), (2,)),
    _op("multi_e", 3, (0, 1), (2,)),
    _op("multi_ms", 3, (0, 1), (2,)),
    _op("sum_d", 3, (0, 1), (2,)),
    _op("product_d", 3, (0, 1), (2,)),
    _op("cbind", 3, (0, 1), (2,)),
    _op("rbind", 3, (0, 1), (2,)),
    _op("mat_pow", 3, (0, 1), (2,)),
    # --- normalized (join-factorized) matrices, for the Morpheus rules ---------
    _fact("factorized", 4),    # factorized(M, S, K, R): M = [S, K R]
    # --- unary matrix -> matrix ------------------------------------------------
    _op("tr", 2, (0,), (1,)),
    _op("inv_m", 2, (0,), (1,)),
    _op("exp", 2, (0,), (1,)),
    _op("adj", 2, (0,), (1,)),
    _op("diag", 2, (0,), (1,)),
    _op("rev", 2, (0,), (1,)),
    _op("row_sums", 2, (0,), (1,)),
    _op("col_sums", 2, (0,), (1,)),
    _op("row_means", 2, (0,), (1,)),
    _op("col_means", 2, (0,), (1,)),
    _op("row_max", 2, (0,), (1,)),
    _op("col_max", 2, (0,), (1,)),
    _op("row_min", 2, (0,), (1,)),
    _op("col_min", 2, (0,), (1,)),
    _op("row_var", 2, (0,), (1,)),
    _op("col_var", 2, (0,), (1,)),
    # --- unary matrix -> scalar -------------------------------------------------
    _op("det", 2, (0,), (1,), scalar=True),
    _op("trace", 2, (0,), (1,), scalar=True),
    _op("sum", 2, (0,), (1,), scalar=True),
    _op("mean", 2, (0,), (1,), scalar=True),
    _op("var", 2, (0,), (1,), scalar=True),
    _op("min", 2, (0,), (1,), scalar=True),
    _op("max", 2, (0,), (1,), scalar=True),
    # --- decompositions (§6.2.5) -------------------------------------------------
    _op("cho", 2, (0,), (1,)),
    _op("qr", 3, (0,), (1, 2)),
    _op("lu", 3, (0,), (1, 2)),
    _op("lup", 4, (0,), (1, 2, 3)),
    # --- scalar arithmetic ----------------------------------------------------------
    _op("add_s", 3, (0, 1), (2,), scalar=True),
    _op("multi_s", 3, (0, 1), (2,), scalar=True),
    _op("inv_s", 2, (0,), (1,), scalar=True),
    _op("pow_s", 3, (0, 1), (2,), scalar=True),
]

VREM_SCHEMA: Dict[str, RelationSpec] = {spec.name: spec for spec in _SPECS}


def relation_spec(name: str) -> RelationSpec:
    """Look up a relation spec, raising ``KeyError`` on unknown relations."""
    return VREM_SCHEMA[name]


def is_output_position(relation: str, position: int) -> bool:
    """True if ``position`` is an output argument of ``relation``."""
    return position in VREM_SCHEMA[relation].output_positions


_SCALAR_SHAPE: Shape = (1, 1)


def infer_output_shapes(
    relation: str,
    input_shapes: Sequence[Optional[Shape]],
    const_args: Sequence[object] = (),
) -> Tuple[Optional[Shape], ...]:
    """Dimensions of the output classes of an operation atom.

    ``input_shapes`` lists the known shapes of the *input* class arguments in
    position order (``None`` when unknown); the returned tuple is aligned
    with the relation's output positions.  A ``None`` entry means the shape
    cannot be determined from the available information.
    """
    spec = relation_spec(relation)
    n_out = len(spec.output_positions)
    unknown = tuple([None] * n_out)

    def first(index: int) -> Optional[Shape]:
        return input_shapes[index] if index < len(input_shapes) else None

    a, b = first(0), first(1)
    if spec.scalar_output:
        return tuple([_SCALAR_SHAPE] * n_out)
    if relation == "multi_m":
        if a and b:
            return ((a[0], b[1]),)
        return unknown
    if relation in ("add_m", "sub_m", "div_m", "multi_e"):
        if a and a != _SCALAR_SHAPE:
            return (a,)
        if b:
            return (b,)
        return (a,) if a else unknown
    if relation == "multi_ms":
        return (b,) if b else unknown
    if relation == "cbind":
        if a and b:
            return ((a[0], a[1] + b[1]),)
        return unknown
    if relation == "rbind":
        if a and b:
            return ((a[0] + b[0], a[1]),)
        return unknown
    if relation == "sum_d":
        if a and b:
            return ((a[0] + b[0], a[1] + b[1]),)
        return unknown
    if relation == "product_d":
        if a and b:
            return ((a[0] * b[0], a[1] * b[1]),)
        return unknown
    if relation == "mat_pow":
        return (a,) if a else unknown
    if relation == "tr":
        return ((a[1], a[0]),) if a else unknown
    if relation in ("inv_m", "exp", "adj", "rev"):
        return (a,) if a else unknown
    if relation == "diag":
        if a is None:
            return unknown
        if a[1] == 1:
            return ((a[0], a[0]),)
        return ((a[0], 1),)
    if relation in ("row_sums", "row_means", "row_max", "row_min", "row_var"):
        return ((a[0], 1),) if a else unknown
    if relation in ("col_sums", "col_means", "col_max", "col_min", "col_var"):
        return ((1, a[1]),) if a else unknown
    if relation == "cho":
        return (a,) if a else unknown
    if relation in ("qr", "lu"):
        return (a, a) if a else unknown
    if relation == "lup":
        return (a, a, a) if a else unknown
    return unknown
