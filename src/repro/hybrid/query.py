"""Hybrid query definitions.

A :class:`HybridQuery` consists of

* a set of *matrix builders* (the Q_RA part): each builder produces one named
  matrix from relational tables — either the dense feature matrix of a PK-FK
  join (:class:`JoinFeatureMatrix`) or the ultra-sparse pivot of a filtered
  fact table (:class:`PivotSparseMatrix`);
* an LA expression (the Q_LA part) over those names plus any auxiliary
  matrices already present in the catalog.

The builders deliberately mirror the two preprocessing queries of the
paper's micro-hybrid benchmark (construction of M and of N, §9.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple, Union

from repro.exceptions import TypeMismatchError
from repro.lang import matrix_expr as mx
from repro.lang import relational_expr as rx


@dataclass(frozen=True)
class JoinFeatureMatrix:
    """A dense feature matrix obtained by PK-FK joining two tables.

    ``M = [left_columns of left_table | right_columns of right_table]`` with
    rows aligned by the join on ``key`` — the construction of the matrix M in
    the Twitter / MIMIC benchmarks.
    """

    name: str
    left_table: str
    right_table: str
    key: str
    left_columns: Tuple[str, ...]
    right_columns: Tuple[str, ...]

    def __post_init__(self):
        if not self.left_columns or not self.right_columns:
            raise TypeMismatchError("JoinFeatureMatrix needs columns from both tables")

    @property
    def n_features(self) -> int:
        return len(self.left_columns) + len(self.right_columns)

    def relational_plan(self) -> rx.RelExpr:
        """The equivalent relational expression (join then projection)."""
        joined = rx.Join(
            rx.TableRef(self.left_table), rx.TableRef(self.right_table), self.key, self.key
        )
        return rx.Projection(joined, self.left_columns + self.right_columns)


@dataclass(frozen=True)
class PivotSparseMatrix:
    """An ultra-sparse matrix pivoted from a (filtered) fact table.

    Each fact row ``(row_key, col_key, measure)`` contributes one non-zero
    cell; ``filters`` restrict the fact table before pivoting (the paper's
    selection of "covid" tweets from the US, or of "CCU" patients), and
    ``measure_filter`` is the additional selection applied to the matrix
    values right before the LA analysis (filter-level < 4, outcome == 2).
    """

    name: str
    fact_table: str
    row_key: str
    col_key: str
    measure: str
    n_rows: int
    n_cols: int
    filters: Tuple[rx.Predicate, ...] = ()
    measure_filter: Tuple[str, float] = None  # (comparator, value), e.g. ("<=", 4)

    def relational_plan(self) -> rx.RelExpr:
        plan: rx.RelExpr = rx.TableRef(self.fact_table)
        if self.filters:
            plan = rx.Selection(plan, self.filters)
        return rx.Projection(plan, (self.row_key, self.col_key, self.measure))


MatrixBuilder = Union[JoinFeatureMatrix, PivotSparseMatrix]


@dataclass
class HybridQuery:
    """One hybrid RA + LA query."""

    name: str
    builders: Tuple[MatrixBuilder, ...]
    analysis: mx.Expr
    description: str = ""

    def builder_names(self) -> Tuple[str, ...]:
        return tuple(builder.name for builder in self.builders)

    def builder(self, name: str) -> MatrixBuilder:
        for builder in self.builders:
            if builder.name == name:
                return builder
        raise KeyError(f"hybrid query {self.name!r} has no builder named {name!r}")
