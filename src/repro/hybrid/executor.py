"""Execution of hybrid queries: Q_RA on the relational engine, Q_LA on an LA backend.

A hybrid query runs in two phases mirroring §9.2.2 of the paper: the
relational preprocessing Q_RA (joins / selections / pivots producing feature
matrices, evaluated by :class:`~repro.backends.relational.RelationalEngine`
and registered in the catalog) and the LA analysis Q_LA over those matrices
(evaluated by any LA backend, NumPy by default).  The
:class:`HybridExecutor` times the two phases separately and returns them in
a :class:`HybridExecutionResult`, optionally together with the optimizer
time that produced the executed analysis expression — so that end-to-end
latency reported by the service layer
(:meth:`repro.service.AnalyticsService.submit_hybrid`) covers plan + RA +
LA rather than silently dropping the planning cost.

Callers that already materialized the builder matrices (repeated queries
over a warm catalog) pass ``skip_builders=True`` and pay only the LA phase;
``analysis_override`` substitutes a rewritten analysis expression while the
builders still come from the original query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from repro.backends.base import Value
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.relational import RelationalEngine
from repro.data.catalog import Catalog
from repro.data.datasets import fact_table_to_sparse
from repro.data.matrix import MatrixData
from repro.hybrid.query import HybridQuery, JoinFeatureMatrix, PivotSparseMatrix
from repro.lang import matrix_expr as mx
from repro.lang import relational_expr as rx


@dataclass
class HybridExecutionResult:
    """Timing breakdown of one hybrid query execution.

    Timing semantics
    ----------------
    * ``plan_seconds``  — optimizer time (the paper's RW_find) spent
      producing the analysis expression that was executed; 0.0 when the
      query ran as stated without going through an optimizer.  Filled by
      the service layer (:meth:`repro.service.AnalyticsService.submit_hybrid`)
      or by any caller that threads the optimizer's ``rewrite_seconds``
      through :meth:`HybridExecutor.execute`.
    * ``ra_seconds``    — the relational preprocessing phase: builder
      evaluation and matrix materialization (0.0 with ``skip_builders``).
    * ``la_seconds``    — execution of the LA analysis on the LA backend.
    * ``total_seconds`` — ``plan + ra + la``: the end-to-end latency a
      service caller observes for this query.  Before the service layer
      existed this property silently omitted planning time; it now includes
      it whenever the caller reports it.
    """

    value: Value
    ra_seconds: float
    la_seconds: float
    plan_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.plan_seconds + self.ra_seconds + self.la_seconds


class HybridExecutor:
    """Runs hybrid queries over a catalog of tables and matrices."""

    def __init__(self, catalog: Catalog, la_backend=None):
        self.catalog = catalog
        self.relational = RelationalEngine(catalog)
        self.la_backend = la_backend if la_backend is not None else NumpyBackend(catalog)

    # -- Q_RA ------------------------------------------------------------------
    def build_matrix(self, builder) -> MatrixData:
        """Materialize one matrix builder and register it in the catalog."""
        if isinstance(builder, JoinFeatureMatrix):
            joined = self.relational.evaluate(
                rx.Join(
                    rx.TableRef(builder.left_table),
                    rx.TableRef(builder.right_table),
                    builder.key,
                    builder.key,
                )
            )
            values = joined.to_matrix(builder.left_columns + builder.right_columns)
            data = MatrixData.from_dense(builder.name, values)
        elif isinstance(builder, PivotSparseMatrix):
            plan = builder.relational_plan()
            table = self.relational.evaluate(plan)
            matrix = fact_table_to_sparse(
                table,
                builder.n_rows,
                builder.n_cols,
                builder.row_key,
                builder.col_key,
                builder.measure,
            )
            if builder.measure_filter is not None:
                comparator, threshold = builder.measure_filter
                matrix = _filter_sparse_values(matrix, comparator, threshold)
            data = MatrixData.from_sparse(builder.name, matrix)
        else:
            raise TypeError(f"unknown matrix builder {type(builder).__name__}")
        self.catalog.register_matrix(data, overwrite=True)
        return data

    # -- full query -----------------------------------------------------------------
    def execute(
        self,
        query: HybridQuery,
        analysis_override: Optional[mx.Expr] = None,
        skip_builders: bool = False,
        plan_seconds: float = 0.0,
    ) -> HybridExecutionResult:
        """Run the RA part (unless already materialized) and the LA part.

        ``plan_seconds`` lets the caller attribute the optimizer time that
        produced ``analysis_override`` to this execution, so the returned
        result's ``total_seconds`` reflects true end-to-end latency.
        """
        ra_start = time.perf_counter()
        if not skip_builders:
            for builder in query.builders:
                self.build_matrix(builder)
        ra_seconds = time.perf_counter() - ra_start

        expr = analysis_override if analysis_override is not None else query.analysis
        la_start = time.perf_counter()
        value = self.la_backend.evaluate(expr)
        la_seconds = time.perf_counter() - la_start
        return HybridExecutionResult(
            value=value,
            ra_seconds=ra_seconds,
            la_seconds=la_seconds,
            plan_seconds=plan_seconds,
        )


def _filter_sparse_values(matrix: sparse.spmatrix, comparator: str, threshold: float):
    """Keep only the cells satisfying ``value <comparator> threshold``."""
    csr = sparse.csr_matrix(matrix, copy=True)
    ops = {
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
        "==": np.equal,
        "!=": np.not_equal,
    }
    keep = ops[comparator](csr.data, threshold)
    csr.data = np.where(keep, csr.data, 0.0)
    csr.eliminate_zeros()
    return csr
