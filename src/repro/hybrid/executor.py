"""Execution of hybrid queries: Q_RA on the relational engine, Q_LA on an LA backend."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from repro.backends.base import Value
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.relational import RelationalEngine
from repro.data.catalog import Catalog
from repro.data.datasets import fact_table_to_sparse
from repro.data.matrix import MatrixData
from repro.hybrid.query import HybridQuery, JoinFeatureMatrix, PivotSparseMatrix
from repro.lang import matrix_expr as mx
from repro.lang import relational_expr as rx


@dataclass
class HybridExecutionResult:
    """Timing breakdown of one hybrid query execution."""

    value: Value
    ra_seconds: float
    la_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.ra_seconds + self.la_seconds


class HybridExecutor:
    """Runs hybrid queries over a catalog of tables and matrices."""

    def __init__(self, catalog: Catalog, la_backend=None):
        self.catalog = catalog
        self.relational = RelationalEngine(catalog)
        self.la_backend = la_backend if la_backend is not None else NumpyBackend(catalog)

    # -- Q_RA ------------------------------------------------------------------
    def build_matrix(self, builder) -> MatrixData:
        """Materialize one matrix builder and register it in the catalog."""
        if isinstance(builder, JoinFeatureMatrix):
            joined = self.relational.evaluate(
                rx.Join(
                    rx.TableRef(builder.left_table),
                    rx.TableRef(builder.right_table),
                    builder.key,
                    builder.key,
                )
            )
            values = joined.to_matrix(builder.left_columns + builder.right_columns)
            data = MatrixData.from_dense(builder.name, values)
        elif isinstance(builder, PivotSparseMatrix):
            plan = builder.relational_plan()
            table = self.relational.evaluate(plan)
            matrix = fact_table_to_sparse(
                table,
                builder.n_rows,
                builder.n_cols,
                builder.row_key,
                builder.col_key,
                builder.measure,
            )
            if builder.measure_filter is not None:
                comparator, threshold = builder.measure_filter
                matrix = _filter_sparse_values(matrix, comparator, threshold)
            data = MatrixData.from_sparse(builder.name, matrix)
        else:
            raise TypeError(f"unknown matrix builder {type(builder).__name__}")
        self.catalog.register_matrix(data, overwrite=True)
        return data

    # -- full query -----------------------------------------------------------------
    def execute(
        self,
        query: HybridQuery,
        analysis_override: Optional[mx.Expr] = None,
        skip_builders: bool = False,
    ) -> HybridExecutionResult:
        """Run the RA part (unless already materialized) and the LA part."""
        ra_start = time.perf_counter()
        if not skip_builders:
            for builder in query.builders:
                self.build_matrix(builder)
        ra_seconds = time.perf_counter() - ra_start

        expr = analysis_override if analysis_override is not None else query.analysis
        la_start = time.perf_counter()
        value = self.la_backend.evaluate(expr)
        la_seconds = time.perf_counter() - la_start
        return HybridExecutionResult(value=value, ra_seconds=ra_seconds, la_seconds=la_seconds)


def _filter_sparse_values(matrix: sparse.spmatrix, comparator: str, threshold: float):
    """Keep only the cells satisfying ``value <comparator> threshold``."""
    csr = sparse.csr_matrix(matrix, copy=True)
    ops = {
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
        "==": np.equal,
        "!=": np.not_equal,
    }
    keep = ops[comparator](csr.data, threshold)
    csr.data = np.where(keep, csr.data, 0.0)
    csr.eliminate_zeros()
    return csr
