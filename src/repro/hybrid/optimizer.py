"""The hybrid optimizer: combined RA and LA rewriting of hybrid queries.

For the LA analysis part, a long-lived :class:`~repro.planner.PlanSession`
is used (one per distinct factor-set, reused across rewrites so repeated
queries hit the session's fingerprint-keyed rewrite cache), extended with

* the Morpheus factorization rules (a :class:`JoinFeatureMatrix` builder is
  declared as a *normalized matrix* over its base-table factors, so that
  aggregates over it can be pushed down and matched against hybrid views);
* the hybrid materialized views supplied by the caller (LA views whose
  definitions reference the base-table matrices).

For the RA preprocessing part, relational materialized views (conjunctive
queries) can be used through the PACB engine: when a builder's relational
plan is equivalent to a view, the builder reads the view instead of the base
tables.  The result records both decisions so the executor / harness can run
the optimized query end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro._compat import warn_legacy_entry_point
from repro.backends.morpheus import factor_names
from repro.backends.relational import RelationalEngine
from repro.constraints.views import LAView
from repro.core.result import RewriteResult
from repro.data.catalog import Catalog
from repro.data.matrix import MatrixData, MatrixMeta
from repro.hybrid.query import HybridQuery, JoinFeatureMatrix, PivotSparseMatrix
from repro.planner.session import PlanSession


@dataclass
class HybridRewriteResult:
    """Outcome of optimizing one hybrid query."""

    query: HybridQuery
    la_result: RewriteResult
    ra_view_substitutions: Dict[str, str] = field(default_factory=dict)
    rewrite_seconds: float = 0.0

    @property
    def optimized_analysis(self):
        return self.la_result.best

    @property
    def changed(self) -> bool:
        return self.la_result.changed or bool(self.ra_view_substitutions)


class HybridOptimizer:
    """Optimizes hybrid queries (both their RA and LA parts).

    .. deprecated::
        Direct construction is a legacy entry point; route hybrid queries
        through :meth:`repro.api.Engine.submit_hybrid`, which drives this
        same optimizer (and the executor) behind one front door.
    """

    def __init__(
        self,
        catalog: Catalog,
        la_views: Sequence[LAView] = (),
        relational_view_tables: Optional[Dict[str, str]] = None,
        estimator=None,
        factor_names: Optional[Dict[str, Tuple[str, str, str]]] = None,
        max_rounds: int = 4,
    ):
        """
        Parameters
        ----------
        la_views:
            Hybrid / LA materialized views available to the LA rewriting.
        relational_view_tables:
            Mapping ``builder name -> table name`` declaring that a stored
            table materializes exactly the relational plan of that builder
            (the V1/V2-style relational views of §2); the optimizer then
            substitutes the view for the builder's base-table plan.
        factor_names:
            Mapping ``matrix name -> (S, K, R)`` matrix names declaring a
            builder's output as a Morpheus normalized matrix; defaults are
            derived automatically for :class:`JoinFeatureMatrix` builders
            whose factor matrices are registered in the catalog.
        """
        warn_legacy_entry_point("HybridOptimizer", "repro.api.Engine.submit_hybrid")
        self.catalog = catalog
        self.la_views = list(la_views)
        self.relational_view_tables = dict(relational_view_tables or {})
        self.estimator = estimator
        self.factor_names = dict(factor_names or {})
        self.max_rounds = max_rounds
        #: One plan session per distinct (factor set, LA configuration);
        #: reusing sessions keeps the compiled constraint program and the
        #: rewrite cache warm across repeated hybrid queries, while still
        #: honouring later mutation of ``la_views`` / ``estimator`` /
        #: ``max_rounds`` (a new configuration simply keys a new session).
        self._sessions: Dict[Tuple, PlanSession] = {}
        #: Catalog version at which factor matrices were last materialized;
        #: any catalog change (e.g. a base table being replaced) forces a
        #: rebuild so the factors never go stale.
        self._factors_catalog_version: Optional[int] = None

    def _session_for(self, factors: Dict[str, Tuple[str, str, str]]) -> PlanSession:
        key = (
            tuple(sorted(factors.items())),
            tuple(
                (view.name, view.definition.fingerprint()) for view in self.la_views
            ),
            id(self.catalog),
            id(self.estimator),
            self.max_rounds,
        )
        session = self._sessions.get(key)
        if session is None:
            session = PlanSession(
                catalog=self.catalog,
                views=list(self.la_views),
                estimator=self.estimator,
                include_morpheus_rules=bool(factors),
                normalized_matrices=factors,
                max_rounds=self.max_rounds,
            )
            self._sessions[key] = session
        return session

    # ------------------------------------------------------------------ factors
    def ensure_factor_matrices(
        self, query: HybridQuery, force: bool = False
    ) -> Dict[str, Tuple[str, str, str]]:
        """Materialize (S, K, R) factor matrices for the join builders.

        For a :class:`JoinFeatureMatrix` named ``M`` over tables T and U, the
        factors are registered as ``M__S`` (T's feature columns), ``M__K``
        (the PK-FK indicator) and ``M__R`` (U's feature columns) unless the
        caller already supplied factor names.
        """
        factors = dict(self.factor_names)
        engine = RelationalEngine(self.catalog)
        for builder in query.builders:
            if not isinstance(builder, JoinFeatureMatrix) or builder.name in factors:
                continue
            s_name, k_name, r_name = factor_names(builder.name)
            if not force and all(
                self.catalog.has_matrix_values(name) for name in (s_name, k_name, r_name)
            ):
                # Already materialized and the catalog is unchanged since;
                # re-registering would only bump the catalog version and
                # needlessly invalidate cached plans.
                factors[builder.name] = (s_name, k_name, r_name)
                continue
            left = self.catalog.table(builder.left_table)
            right = self.catalog.table(builder.right_table)
            s_values = left.to_matrix(builder.left_columns)
            r_values = right.to_matrix(builder.right_columns)
            left_keys = np.asarray(left.column(builder.key), dtype=np.int64)
            right_keys = np.asarray(right.column(builder.key), dtype=np.int64)
            position_of = {int(key): idx for idx, key in enumerate(right_keys)}
            cols = np.asarray([position_of[int(key)] for key in left_keys], dtype=np.int64)
            indicator = sparse.csr_matrix(
                (np.ones(len(cols)), (np.arange(len(cols)), cols)),
                shape=(len(left_keys), len(right_keys)),
            )
            self.catalog.register_dense(s_name, s_values, overwrite=True)
            self.catalog.register_sparse(k_name, indicator, overwrite=True)
            self.catalog.register_dense(r_name, r_values, overwrite=True)
            factors[builder.name] = (s_name, k_name, r_name)
        return factors

    # ------------------------------------------------------------------ main entry
    def rewrite(self, query: HybridQuery, materialize_factors: bool = True) -> HybridRewriteResult:
        start = time.perf_counter()
        if materialize_factors:
            # Rebuild the factor matrices whenever the catalog changed since
            # they were last materialized (a replaced base table must never
            # leave the factorized plan computing on stale S/K/R values); an
            # unchanged catalog reuses them, keeping cached plans valid.
            stale = self.catalog.version != self._factors_catalog_version
            factors = self.ensure_factor_matrices(query, force=stale)
        else:
            factors = dict(self.factor_names)
        # Declare metadata for builder outputs that are not materialized yet,
        # so the LA cost model can reason about them.
        for builder in query.builders:
            if self.catalog.has_matrix(builder.name):
                continue
            if isinstance(builder, JoinFeatureMatrix):
                rows = self.catalog.table(builder.left_table).n_rows
                self.catalog.register_metadata(
                    MatrixMeta(builder.name, rows, builder.n_features, rows * builder.n_features)
                )
            elif isinstance(builder, PivotSparseMatrix):
                facts = self.catalog.table(builder.fact_table).n_rows
                self.catalog.register_metadata(
                    MatrixMeta(
                        builder.name,
                        builder.n_rows,
                        builder.n_cols,
                        min(facts, builder.n_rows * builder.n_cols),
                    )
                )

        la_session = self._session_for(factors)
        if materialize_factors:
            # Record the settled version only now: session creation may have
            # registered view metadata, bumping the catalog version, and
            # recording earlier would force a factor rebuild (and a cache
            # miss) on the very next rewrite.
            self._factors_catalog_version = self.catalog.version
        la_result = la_session.rewrite(query.analysis)

        substitutions: Dict[str, str] = {}
        for builder in query.builders:
            view_table = self.relational_view_tables.get(builder.name)
            if view_table is not None and self.catalog.has_table(view_table):
                substitutions[builder.name] = view_table

        return HybridRewriteResult(
            query=query,
            la_result=la_result,
            ra_view_substitutions=substitutions,
            rewrite_seconds=time.perf_counter() - start,
        )
