"""Hybrid (RA + LA) queries and their optimization.

A hybrid query (§9.2.2) has a relational preprocessing part Q_RA — joins,
selections and projections building feature matrices — and an LA analysis
part Q_LA over those matrices.  HADAD optimizes both: the RA part is
rewritten against relational views with the PACB engine, and the LA part is
rewritten against LA / hybrid views with the VREM saturation engine, with
the Morpheus factorization rules bridging the two sides (a join-produced
matrix is declared *normalized* so that operators over it can be pushed to
the base tables and matched against hybrid views).

Hybrid queries are served end-to-end by
:meth:`repro.service.AnalyticsService.submit_hybrid`, which pairs the
optimizer and executor and folds planning time into the reported latency.
"""

from repro.hybrid.query import HybridQuery, JoinFeatureMatrix, PivotSparseMatrix
from repro.hybrid.optimizer import HybridOptimizer, HybridRewriteResult
from repro.hybrid.executor import HybridExecutionResult, HybridExecutor

__all__ = [
    "HybridQuery",
    "JoinFeatureMatrix",
    "PivotSparseMatrix",
    "HybridOptimizer",
    "HybridRewriteResult",
    "HybridExecutionResult",
    "HybridExecutor",
]
