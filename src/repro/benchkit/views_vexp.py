"""The materialized view set V_exp of Table 14."""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.constraints.views import LAView
from repro.lang import matrix_expr as mx
from repro.lang.builder import det, inv, transpose

Env = Mapping[str, mx.Expr]

#: View name -> definition builder (over the Table 6 role environment).
VEXP_VIEWS: Dict[str, callable] = {
    "V1": lambda r: inv(r["D"]),
    "V2": lambda r: inv(transpose(r["C"])),
    "V3": lambda r: r["N"] @ r["M"],
    "V4": lambda r: r["u1"] @ transpose(r["v2"]),
    "V5": lambda r: r["D"] @ r["C"],
    "V6": lambda r: r["A"] + r["B"],
    "V7": lambda r: inv(r["C"]),
    "V8": lambda r: transpose(r["C"]) @ r["D"],
    "V9": lambda r: inv(r["D"] + r["C"]),
    "V10": lambda r: det(r["C"] @ r["D"]),
    "V11": lambda r: det(r["D"] @ r["C"]),
    "V12": lambda r: transpose(r["D"] @ r["C"]),
}


def build_vexp_views(roles: Env, subset: List[str] = None) -> List[LAView]:
    """Instantiate (a subset of) the V_exp views over a role environment."""
    names = subset if subset is not None else list(VEXP_VIEWS)
    return [LAView(name, VEXP_VIEWS[name](roles)) for name in names]


#: Which V_exp views each P_Views pipeline is expected to exploit (Table 15).
VIEWS_USED_BY_PIPELINE: Dict[str, List[str]] = {
    "P1.2": ["V6"], "P1.3": ["V7", "V1"], "P1.4": ["V6"], "P1.11": ["V6"],
    "P1.15": ["V3"], "P1.17": ["V10"], "P1.19": ["V2"], "P1.20": ["V7"],
    "P1.21": ["V1"], "P1.22": ["V9"], "P1.23": ["V7", "V1"], "P1.24": ["V7", "V1"],
    "P1.29": ["V5"], "P1.30": ["V3"],
    "P2.2": ["V1"], "P2.4": ["V6"], "P2.5": ["V9"], "P2.6": ["V1"],
    "P2.9": ["V12"], "P2.11": ["V6"], "P2.13": ["V3"], "P2.14": ["V3"],
    "P2.16": ["V7", "V1"], "P2.17": ["V9"], "P2.18": ["V6"], "P2.20": ["V3"],
    "P2.21": ["V1"], "P2.25": ["V4"], "P2.26": ["V9"], "P2.27": ["V9", "V5"],
}
