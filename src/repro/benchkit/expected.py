"""Expected rewrites from Tables 12 and 13 (the P¬Opt pipelines).

For each pipeline the paper lists the rewriting HADAD found; these builders
reconstruct that expression over the Table 6 role environment so benchmarks
and tests can check that the optimizer's choice is *at least as cheap* as
the paper's (and numerically equivalent to the original).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.lang import matrix_expr as mx
from repro.lang.builder import (
    colsums,
    det,
    elem_div,
    hadamard,
    inv,
    rowsums,
    scalar_mul,
    sub,
    sum_all,
    trace,
    transpose,
)

Env = Mapping[str, mx.Expr]
_t = transpose

EXPECTED_REWRITES: Dict[str, Callable[[Env], mx.Expr]] = {
    # Table 12
    "P1.1": lambda r: _t(r["N"]) @ _t(r["M"]),
    "P1.2": lambda r: _t(r["A"] + r["B"]),
    "P1.3": lambda r: inv(r["D"] @ r["C"]),
    "P1.4": lambda r: r["A"] @ r["v1"] + r["B"] @ r["v1"],
    "P1.5": lambda r: r["D"],
    "P1.6": lambda r: hadamard(r["s1"], trace(r["D"])),
    "P1.7": lambda r: r["A"],
    "P1.8": lambda r: scalar_mul(r["s1"] + r["s2"], r["A"]),
    "P1.9": lambda r: det(r["D"]),
    "P1.10": lambda r: _t(colsums(r["A"])),
    "P1.11": lambda r: _t(colsums(r["A"] + r["B"])),
    "P1.12": lambda r: colsums(r["M"]) @ r["N"],
    "P1.13": lambda r: sum_all(hadamard(_t(colsums(r["M"])), rowsums(r["N"]))),
    "P1.14": lambda r: sum_all(hadamard(_t(colsums(r["M"])), rowsums(r["N"]))),
    "P1.15": lambda r: r["M"] @ (r["N"] @ r["M"]),
    "P1.16": lambda r: sum_all(r["A"]),
    "P1.17": lambda r: hadamard(det(r["C"]), hadamard(det(r["D"]), det(r["C"]))),
    "P1.18": lambda r: sum_all(r["A"]),
    "P1.25": lambda r: hadamard(
        r["M"], elem_div(_t(r["N"]), r["M"] @ (r["N"] @ _t(r["N"])))
    ),
    # Table 13
    "P2.1": lambda r: trace(r["C"]) + trace(r["D"]),
    "P2.2": lambda r: elem_div(mx.ScalarConst(1.0), det(r["D"])),
    "P2.3": lambda r: trace(r["D"]),
    "P2.4": lambda r: scalar_mul(r["s1"], r["A"] + r["B"]),
    "P2.5": lambda r: elem_div(mx.ScalarConst(1.0), det(r["C"] + r["D"])),
    "P2.6": lambda r: _t(inv(r["D"]) @ r["C"]),
    "P2.7": lambda r: r["C"],
    "P2.8": lambda r: hadamard(det(r["C"]), det(r["D"])),
    "P2.9": lambda r: trace(r["D"] @ r["C"]) + trace(r["D"]),
    "P2.10": lambda r: r["M"] @ rowsums(r["N"]),
    "P2.11": lambda r: sum_all(r["A"]) + sum_all(r["B"]),
    "P2.12": lambda r: sum_all(hadamard(_t(colsums(r["M"])), rowsums(r["N"]))),
    "P2.13": lambda r: _t(r["M"] @ (r["N"] @ r["M"])),
    "P2.14": lambda r: (r["M"] @ (r["N"] @ r["M"])) @ r["N"],
    "P2.15": lambda r: sum_all(r["A"]),
    "P2.16": lambda r: trace(inv(r["D"] @ r["C"])) + trace(r["D"]),
    "P2.17": lambda r: _t(inv(r["C"] + r["D"])) @ r["D"],
    "P2.18": lambda r: _t(rowsums(r["A"] + r["B"])),
    "P2.25": lambda r: sub(r["u1"] @ (_t(r["v2"]) @ r["v2"]), r["X"] @ r["v2"]),
}


def build_expected_rewrite(name: str, roles: Env) -> mx.Expr:
    """Instantiate the paper's expected rewrite of one pipeline."""
    return EXPECTED_REWRITES[name](roles)
