"""Benchmark harness: original vs rewritten execution of pipelines.

For one pipeline the harness reports the quantities the paper plots:

* ``q_exec``   — execution time of the pipeline as stated,
* ``rw_find``  — HADAD's rewriting time (optimization overhead),
* ``rw_exec``  — execution time of the chosen rewriting,
* ``speedup``  — q_exec / rw_exec,
* ``overhead`` — rw_find / (q_exec + rw_find) (§9.1.3),

plus the estimated costs and a numerical-equivalence check of the two
results (soundness in practice, not just on paper).

The ``optimizer`` argument of :func:`run_pipeline` is anything exposing the
``rewrite`` protocol — preferably a :class:`repro.api.Engine` (or a
:class:`~repro.planner.PlanSession`); the legacy
:class:`~repro.core.optimizer.HadadOptimizer` façade still works.  For
sweeps over many pipelines (the Fig. 5–12 loops), :func:`run_pipelines`
plans the whole batch through ``rewrite_all`` so structurally identical
pipelines are planned once and repeated runs hit the session cache.

Beyond the per-pipeline measurements, :func:`run_service_sweep` benchmarks
the whole serving path end to end: the pipeline batch goes through
:meth:`repro.service.AnalyticsService.submit_many` at several worker
counts, reporting latency/throughput per concurrency level, per-phase
(queue / plan / execute) means, pool counters, and — against a serial
``rewrite_all`` reference — whether the concurrent plans are byte-identical
to the serial ones.  :func:`run_gateway_sweep` goes one layer further out
and load-tests the network gateway (:mod:`repro.server`) with N concurrent
asyncio clients over a (batch window × concurrency) grid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import fmean
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._compat import suppress_legacy_warnings
from repro.backends.base import values_allclose
from repro.backends.numpy_backend import NumpyBackend
from repro.constraints.views import LAView
from repro.core.result import RewriteResult
from repro.data.catalog import Catalog
from repro.data.matrix import MatrixData
from repro.lang import matrix_expr as mx


@dataclass
class PipelineRun:
    """Measurements for one pipeline on one backend."""

    name: str
    q_exec: float
    rw_find: float
    rw_exec: float
    original_cost: float
    best_cost: float
    changed: bool
    equivalent: Optional[bool]
    rewrite: str
    used_views: List[str] = field(default_factory=list)
    cache_hit: bool = False
    stage_timings: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.rw_exec <= 0:
            return float("inf")
        return self.q_exec / self.rw_exec

    @property
    def overhead(self) -> float:
        denominator = self.q_exec + self.rw_find
        return self.rw_find / denominator if denominator > 0 else 0.0

    def as_row(self) -> str:
        """One formatted report line (the shape of the paper's figures)."""
        equiv = "=" if self.equivalent else ("?" if self.equivalent is None else "!")
        return (
            f"{self.name:8s} Qexec={self.q_exec * 1000:9.2f}ms "
            f"RWfind={self.rw_find * 1000:7.2f}ms RWexec={self.rw_exec * 1000:9.2f}ms "
            f"speedup={self.speedup:7.2f}x overhead={self.overhead * 100:5.2f}% {equiv} "
            f"{self.rewrite}"
        )


def materialize_views(views: Sequence[LAView], catalog: Catalog, backend=None) -> None:
    """Compute and register the stored results of materialized views.

    This is the offline step the paper performs when it materializes V_exp
    on disk: each view definition is evaluated once and the result is
    registered in the catalog under the view's storage name, so rewritten
    pipelines can scan it.
    """
    backend = backend if backend is not None else NumpyBackend(catalog)
    for view in views:
        if catalog.has_matrix_values(view.name):
            continue
        value = backend.evaluate(view.definition)
        if hasattr(value, "shape") and getattr(value, "ndim", 2) >= 1:
            data = MatrixData.from_dense(view.name, value) if not hasattr(value, "tocsr") else MatrixData.from_sparse(view.name, value)
        else:
            data = MatrixData.from_dense(view.name, [[float(value)]])
        catalog.drop_matrix(view.name)
        catalog.register_matrix(data)


def _execute_run(
    name: str,
    expr: mx.Expr,
    result: RewriteResult,
    backend,
    check_equivalence: bool,
    execute: bool,
) -> PipelineRun:
    """Turn one rewrite result into a measured :class:`PipelineRun`."""
    q_exec = rw_exec = 0.0
    equivalent: Optional[bool] = None
    if execute:
        original_run = backend.timed(expr)
        rewritten_run = backend.timed(result.best) if result.changed else original_run
        q_exec, rw_exec = original_run.seconds, rewritten_run.seconds
        if check_equivalence and result.changed:
            equivalent = values_allclose(original_run.value, rewritten_run.value, rtol=1e-4, atol=1e-5)
        elif not result.changed:
            equivalent = True
    return PipelineRun(
        name=name,
        q_exec=q_exec,
        rw_find=result.rewrite_seconds,
        rw_exec=rw_exec,
        original_cost=result.original_cost,
        best_cost=result.best_cost,
        changed=result.changed,
        equivalent=equivalent,
        rewrite=result.best.to_string(),
        used_views=result.used_views,
        cache_hit=result.cache_hit,
        stage_timings=dict(result.stage_timings),
    )


def run_pipeline(
    name: str,
    expr: mx.Expr,
    optimizer,
    backend,
    check_equivalence: bool = True,
    execute: bool = True,
) -> PipelineRun:
    """Optimize and (optionally) execute one pipeline, original vs rewrite.

    ``optimizer`` is anything with a ``rewrite(expr)`` method — a
    :class:`~repro.planner.PlanSession` or the ``HadadOptimizer`` façade.
    """
    result: RewriteResult = optimizer.rewrite(expr)
    return _execute_run(name, expr, result, backend, check_equivalence, execute)


def run_pipelines(
    pipelines: Sequence[Tuple[str, mx.Expr]],
    optimizer,
    backend,
    check_equivalence: bool = True,
    execute: bool = True,
) -> List[PipelineRun]:
    """Optimize a whole sweep as one batch, then execute pipeline by pipeline.

    Planning goes through ``rewrite_all``, so structurally identical
    pipelines are planned exactly once (fingerprint deduplication) and — on a
    cache-enabled :class:`~repro.planner.PlanSession` — repeated sweeps reuse
    earlier plans entirely.
    """
    pipelines = list(pipelines)  # tolerate one-shot iterables (zip, generators)
    results = optimizer.rewrite_all([expr for _, expr in pipelines])
    return [
        _execute_run(name, expr, result, backend, check_equivalence, execute)
        for (name, expr), result in zip(pipelines, results)
    ]


def run_service_sweep(
    pipelines: Sequence[Tuple[str, mx.Expr]],
    service_factory: Callable[[], "object"],
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    execute: bool = False,
    session_factory: Optional[Callable[[], "object"]] = None,
) -> dict:
    """End-to-end service benchmark: a concurrency sweep over one batch.

    For each worker count a *fresh* service (cold pool and caches, so the
    points are comparable) plans — and with ``execute=True`` also runs —
    the whole batch through ``submit_many``.  When ``session_factory`` is
    given (anything whose product has ``rewrite_all``), the batch is also
    planned serially once and each sweep point records
    ``byte_identical_to_serial``: whether every concurrent plan's decoded
    expression string equals the serial one.  Returns a JSON-ready summary.
    """
    from repro.service import ServiceRequest

    pipelines = list(pipelines)
    serial_plans: Optional[List[str]] = None
    serial_seconds: Optional[float] = None
    if session_factory is not None:
        session = session_factory()
        start = time.perf_counter()
        serial_results = session.rewrite_all([expr for _, expr in pipelines])
        serial_seconds = time.perf_counter() - start
        serial_plans = [result.best.to_string() for result in serial_results]

    sweep: List[dict] = []
    for workers in worker_counts:
        service = service_factory()
        requests = [
            ServiceRequest(expression=expr, name=name, execute=execute)
            for name, expr in pipelines
        ]
        start = time.perf_counter()
        results = service.submit_many(requests, workers=workers)
        seconds = time.perf_counter() - start
        def mean(values: List[float]) -> float:
            return fmean(values) if values else 0.0

        point = {
            "workers": int(workers),
            "seconds": seconds,
            "requests_per_sec": len(requests) / seconds if seconds > 0 else float("inf"),
            "mean_queue_seconds": mean([r.queue_seconds for r in results]),
            "mean_plan_seconds": mean([r.plan_seconds for r in results]),
            "mean_execute_seconds": mean([r.execute_seconds for r in results]),
            "pool": service.pool.stats_dict(),
        }
        if serial_plans is not None:
            point["byte_identical_to_serial"] = (
                [r.rewrite.best.to_string() for r in results] == serial_plans
            )
        sweep.append(point)

    return {
        "benchmark": "service_concurrency_sweep",
        "pipelines": [name for name, _ in pipelines],
        "execute": execute,
        "serial_seconds": serial_seconds,
        "sweep": sweep,
    }


def run_gateway_sweep(
    pipelines: Sequence[Tuple[str, mx.Expr]],
    service_factory: Callable[[], "object"],
    concurrency_levels: Sequence[int] = (8, 64, 200),
    batch_windows: Sequence[float] = (0.01,),
    requests_per_client: int = 2,
    execute: bool = False,
    max_in_flight: Optional[int] = None,
    session_factory: Optional[Callable[[], "object"]] = None,
    host: str = "127.0.0.1",
) -> dict:
    """Load-sweep the asyncio gateway: N concurrent clients per grid point.

    For every ``(batch_window, concurrency)`` pair a *fresh* gateway over a
    fresh service (cold pool and caches) is started on an ephemeral port.
    ``concurrency`` client connections open simultaneously; each sends its
    ``requests_per_client`` requests back to back (round-robin over the
    pipeline batch), so the first wave puts the full client count in flight
    at once — the point records the peak in-flight gauge, micro-batch
    shape, rejections and throughput.  With a ``session_factory`` the same
    batch is also planned serially once and every point records whether the
    gateway's plans were byte-identical to the serial reference.

    Everything here is stdlib asyncio; the function itself is synchronous
    (it owns its event loop via ``asyncio.run``) so benchmarks and CI call
    it like any other harness entry point.
    """
    import asyncio

    from repro.server import AnalyticsGateway, GatewayClient, GatewayError

    pipelines = list(pipelines)
    serial_plans: Optional[Dict[str, str]] = None
    if session_factory is not None:
        session = session_factory()
        serial_results = session.rewrite_all([expr for _, expr in pipelines])
        serial_plans = {
            name: result.best.to_string()
            for (name, _), result in zip(pipelines, serial_results)
        }

    async def run_point(window: float, concurrency: int) -> dict:
        service = service_factory()
        # The gateway is an internal building block of the harness here,
        # not a user-facing entry point; don't let its legacy-constructor
        # warning fire at benchmark callers.
        with suppress_legacy_warnings():
            gateway = AnalyticsGateway(
                service,
                host=host,
                batch_window_seconds=window,
                max_batch=max(2, concurrency),
                max_in_flight=max_in_flight
                if max_in_flight is not None
                else max(concurrency * 2, 64),
            )
        await gateway.start()
        rejected = 0
        mismatched: List[str] = []

        # Connections open *before* the clock starts: the point measures how
        # the gateway absorbs a simultaneous request wave, not how fast the
        # kernel's accept queue drains a connect storm.
        clients = await asyncio.gather(
            *[GatewayClient(host, gateway.port).connect() for _ in range(concurrency)]
        )

        async def client_task(client_index: int) -> int:
            nonlocal rejected
            answered = 0
            client = clients[client_index]
            for turn in range(requests_per_client):
                name, expr = pipelines[
                    (client_index * requests_per_client + turn) % len(pipelines)
                ]
                try:
                    response = await client.submit(expr, name=name, execute=execute)
                except GatewayError as error:
                    if error.status == 429:
                        rejected += 1
                        continue
                    raise
                answered += 1
                if serial_plans is not None and response["plan"] != serial_plans[name]:
                    mismatched.append(name)
            return answered

        start = time.perf_counter()
        try:
            answered = sum(
                await asyncio.gather(*[client_task(i) for i in range(concurrency)])
            )
        finally:
            await asyncio.gather(
                *[client.close() for client in clients], return_exceptions=True
            )
        seconds = time.perf_counter() - start
        snapshot = gateway.metrics.as_dict()
        await gateway.stop()
        point = {
            "batch_window_seconds": window,
            "concurrency": int(concurrency),
            "requests_sent": concurrency * requests_per_client,
            "requests_answered": answered,
            "rejected_429": rejected,
            "seconds": seconds,
            "requests_per_sec": answered / seconds if seconds > 0 else float("inf"),
            "peak_in_flight": snapshot["gauges"]["gateway_in_flight_requests"]["max"],
            "max_batch_size": snapshot["histograms"]["gateway_batch_size"]["max"],
            "mean_batch_size": snapshot["histograms"]["gateway_batch_size"]["mean"],
            "batches": snapshot["counters"]["gateway_batches_total"],
            "deduped_requests": snapshot["counters"]["gateway_deduped_requests_total"],
            "micro_batching_observed": snapshot["histograms"]["gateway_batch_size"]["max"]
            > 1,
            "no_rejections": rejected == 0,
            "pool": service.pool.stats_dict(),
        }
        if serial_plans is not None:
            point["byte_identical_to_serial"] = not mismatched
            if mismatched:
                point["mismatched"] = sorted(set(mismatched))
        return point

    async def run_grid() -> List[dict]:
        points = []
        for window in batch_windows:
            for concurrency in concurrency_levels:
                points.append(await run_point(window, concurrency))
        return points

    points = asyncio.run(run_grid())
    return {
        "benchmark": "gateway_load_sweep",
        "pipelines": [name for name, _ in pipelines],
        "execute": execute,
        "requests_per_client": requests_per_client,
        "points": points,
    }


def run_workspace_sweep(
    pipelines: Sequence[Tuple[str, mx.Expr]],
    engine_factory: Callable[[], "object"],
    tenant_names: Sequence[str],
    clients_per_tenant: Sequence[int] = (8,),
    batch_windows: Sequence[float] = (0.01,),
    requests_per_client: int = 2,
    max_in_flight: Optional[int] = None,
    host: str = "127.0.0.1",
) -> dict:
    """Multi-tenant gateway load sweep: N workspaces × M clients each.

    For every ``(batch_window, clients_per_tenant)`` pair a *fresh*
    multi-workspace engine (from ``engine_factory``) serves a fresh gateway;
    ``clients_per_tenant`` connections open **per tenant**, each pinned to
    its workspace via the wire ``workspace`` field, and fire their requests
    back to back (round-robin over the pipeline batch).  Before the storm,
    every tenant's pipelines are planned serially on a session built from
    that tenant's own bundle (catalog, views, config); each point records
    whether every gateway answer was byte-identical to *its own tenant's*
    serial plan — the workspace-isolation acceptance criterion: a
    cross-tenant cache hit would surface as a plan mismatch — plus whether
    the tenants' plans actually diverge (proof the isolation is load-
    bearing), peak concurrency, rejections and the per-workspace labeled
    metric series.
    """
    import asyncio

    from repro.planner.session import PlanSession
    from repro.server import GatewayClient, GatewayError

    pipelines = list(pipelines)
    tenant_names = list(tenant_names)

    async def run_point(window: float, concurrency: int) -> dict:
        engine = engine_factory()
        # Serial per-tenant references: one session per tenant, built from
        # the tenant's own bundle exactly as the engine's pools build theirs.
        serial_plans: Dict[str, Dict[str, str]] = {}
        for tenant in tenant_names:
            workspace = engine.workspaces.get(tenant)
            session = PlanSession(
                catalog=workspace.catalog,
                views=list(workspace.views),
                estimator=workspace.estimator,
                config=workspace.config,
            )
            serial_plans[tenant] = {
                name: result.best.to_string()
                for (name, _), result in zip(
                    pipelines, session.rewrite_all([expr for _, expr in pipelines])
                )
            }
        total_clients = concurrency * len(tenant_names)
        with suppress_legacy_warnings():
            gateway = engine.build_gateway(
                host=host,
                batch_window_seconds=window,
                max_batch=max(2, total_clients),
                max_in_flight=max_in_flight
                if max_in_flight is not None
                else max(total_clients * 2, 64),
            )
        await gateway.start()
        rejected = 0
        mismatched: List[str] = []
        answered_by_tenant = {tenant: 0 for tenant in tenant_names}

        clients = await asyncio.gather(
            *[
                GatewayClient(host, gateway.port).connect()
                for _ in range(total_clients)
            ]
        )

        async def client_task(client_index: int) -> int:
            nonlocal rejected
            tenant = tenant_names[client_index % len(tenant_names)]
            client = clients[client_index]
            answered = 0
            # Round-robin by tenant-local rank so *every* tenant covers the
            # whole pipeline batch (and the byte-identical check therefore
            # exercises the view-divergent pipelines on both sides).
            rank = client_index // len(tenant_names)
            for turn in range(requests_per_client):
                name, expr = pipelines[
                    (rank * requests_per_client + turn) % len(pipelines)
                ]
                try:
                    response = await client.submit(
                        expr, name=name, workspace=tenant
                    )
                except GatewayError as error:
                    if error.status == 429:
                        rejected += 1
                        continue
                    raise
                answered += 1
                answered_by_tenant[tenant] += 1
                if response["plan"] != serial_plans[tenant][name]:
                    mismatched.append(f"{tenant}:{name}")
            return answered

        start = time.perf_counter()
        try:
            answered = sum(
                await asyncio.gather(
                    *[client_task(i) for i in range(total_clients)]
                )
            )
        finally:
            await asyncio.gather(
                *[client.close() for client in clients], return_exceptions=True
            )
        seconds = time.perf_counter() - start
        snapshot = gateway.metrics.as_dict()
        await gateway.stop()

        workspace_series = [
            f'gateway_workspace_requests_total{{workspace="{tenant}"}}'
            for tenant in tenant_names
        ]
        plans_computed_total = sum(
            handle_stats["plans_computed"]
            for handle_stats in (
                engine.workspace(tenant).stats_dict() for tenant in tenant_names
            )
        )
        distinct = any(
            len({serial_plans[tenant][name] for tenant in tenant_names}) > 1
            for name, _ in pipelines
        )
        point = {
            "batch_window_seconds": window,
            "clients_per_tenant": int(concurrency),
            "tenants": list(tenant_names),
            "requests_sent": total_clients * requests_per_client,
            "requests_answered": answered,
            "answered_by_tenant": answered_by_tenant,
            "tenants_served": sum(
                1 for count in answered_by_tenant.values() if count > 0
            ),
            "rejected_429": rejected,
            "seconds": seconds,
            "requests_per_sec": answered / seconds if seconds > 0 else float("inf"),
            "peak_in_flight": snapshot["gauges"]["gateway_in_flight_requests"]["max"],
            "per_tenant_byte_identical": not mismatched,
            "tenant_plans_distinct": distinct,
            "no_rejections": rejected == 0,
            "plans_computed_total": plans_computed_total,
            "workspace_series_present": all(
                series in snapshot["counters"] for series in workspace_series
            ),
        }
        if mismatched:
            point["mismatched"] = sorted(set(mismatched))
        return point

    async def run_grid() -> List[dict]:
        points = []
        for window in batch_windows:
            for concurrency in clients_per_tenant:
                points.append(await run_point(window, concurrency))
        return points

    points = asyncio.run(run_grid())
    return {
        "benchmark": "gateway_workspace_sweep",
        "pipelines": [name for name, _ in pipelines],
        "tenants": list(tenant_names),
        "requests_per_client": requests_per_client,
        "points": points,
    }


@dataclass(frozen=True)
class TenantEngineFactory:
    """A picklable multi-tenant engine factory for the worker-pool tier.

    The worker sweep (and the chaos tests) need the *same* engine built in
    the gateway process and inside every spawned planner worker; a closure
    cannot cross the spawn boundary, a module-level dataclass with
    ``__call__`` can.  Every tenant gets the benchkit catalog at ``scale``
    (one shared catalog object per engine — tenants are isolation-
    equivalent, not data-divergent, which is exactly what the byte-identity
    check needs).
    """

    tenants: Tuple[str, ...]
    scale: float = 0.01
    max_sessions: int = 4

    def __call__(self) -> "object":
        from repro.api import Engine, EngineConfig, WorkspaceRegistry
        from repro.benchkit.datasets import benchmark_catalog

        catalog = benchmark_catalog(scale=self.scale)
        registry = WorkspaceRegistry()
        for tenant in self.tenants:
            registry.register(tenant, catalog=catalog)
        return Engine(
            workspaces=registry,
            config=EngineConfig(service={"max_sessions": self.max_sessions}),
        )


def run_worker_sweep(
    pipelines: Sequence[Tuple[str, mx.Expr]],
    factory: Callable[[], "object"],
    tenant_names: Sequence[str],
    worker_counts: Sequence[int] = (0, 1, 2, 4),
    hot_tenants: int = 2,
    hot_factor: int = 6,
    scaling_floor_multicore: float = 2.5,
    scaling_floor_fallback: float = 0.4,
    max_in_flight: Optional[int] = None,
    host: str = "127.0.0.1",
) -> dict:
    """The worker-pool scaling + isolation sweep behind ``--planner-workers``.

    For every count in ``worker_counts`` a fresh engine (from ``factory``,
    which must be picklable — see :class:`TenantEngineFactory`) serves a
    fresh gateway with that many planner worker processes (0 = the
    in-process path), and one client per tenant cold-plans the pipeline
    batch.  Each point records plans/sec, byte-identity of every answer
    against a serial reference session, worker attribution (every response
    produced by exactly the worker the hash ring assigns that tenant), and
    a warm second round that must be all cache hits — the proof that a
    tenant's requests keep landing on the same warm cache.

    The ``skew`` phase then drives a 2-hot-tenant skewed load at the
    largest worker count: the hot tenants fire ``hot_factor``× the request
    volume of the light tenants, and the summary records per-tenant
    byte-identity, attribution, and the hot tenants' warm-hit fraction —
    no cross-tenant interference, structurally verified.

    The scaling acceptance is CPU-aware: workers are *processes*, so the
    ≥``scaling_floor_multicore``× plans/sec floor at the largest count only
    physically exists with ≥ 4 cores (CI); below that the floor degrades to
    ``scaling_floor_fallback`` (collapse detection — the worker tier must
    not be dramatically slower than in-process even on one core).
    """
    import asyncio
    import os

    from repro.planner.session import PlanSession
    from repro.server import GatewayClient

    pipelines = list(pipelines)
    tenant_names = list(tenant_names)
    worker_counts = sorted(set(int(count) for count in worker_counts))

    def serial_reference(engine) -> Dict[str, Dict[str, str]]:
        """Per-tenant serial plans, computed once per distinct bundle."""
        plans: Dict[str, Dict[str, str]] = {}
        by_bundle: Dict[tuple, Dict[str, str]] = {}
        for tenant in tenant_names:
            workspace = engine.workspaces.get(tenant)
            key = (id(workspace.catalog), tuple(v.name for v in workspace.views))
            cached = by_bundle.get(key)
            if cached is None:
                session = PlanSession(
                    catalog=workspace.catalog,
                    views=list(workspace.views),
                    estimator=workspace.estimator,
                    config=workspace.config,
                )
                cached = {
                    name: result.best.to_string()
                    for (name, _), result in zip(
                        pipelines,
                        session.rewrite_all([expr for _, expr in pipelines]),
                    )
                }
                by_bundle[key] = cached
            plans[tenant] = cached
        return plans

    async def start_gateway(engine, workers: int):
        with suppress_legacy_warnings():
            gateway = engine.build_gateway(
                worker_factory=factory if workers else None,
                host=host,
                planner_workers=workers,
                batch_window_seconds=0.002,
                max_in_flight=max_in_flight
                if max_in_flight is not None
                else max(len(tenant_names) * (hot_factor + 2) * 2, 64),
            )
        await gateway.start()
        return gateway

    async def tenant_storm(
        gateway, serial_plans, rounds: int = 1
    ) -> Tuple[dict, float]:
        """One client per tenant; each covers the batch ``rounds`` times."""
        clients = await asyncio.gather(
            *[GatewayClient(host, gateway.port).connect() for _ in tenant_names]
        )
        supervisor = gateway.supervisor
        outcome = {
            "answered": 0,
            "mismatched": [],
            "misrouted": [],
            "cache_hits": 0,
        }

        async def one_tenant(index: int) -> None:
            tenant = tenant_names[index]
            client = clients[index]
            expected_worker = (
                supervisor.route(tenant) if supervisor is not None else None
            )
            for turn in range(rounds):
                for name, expr in pipelines:
                    response = await client.submit(expr, name=name, workspace=tenant)
                    outcome["answered"] += 1
                    if response["plan"] != serial_plans[tenant][name]:
                        outcome["mismatched"].append(f"{tenant}:{name}")
                    if response.get("cache_hit"):
                        outcome["cache_hits"] += 1
                    if (
                        expected_worker is not None
                        and response.get("worker") != expected_worker
                    ):
                        outcome["misrouted"].append(f"{tenant}:{name}")

        start = time.perf_counter()
        try:
            await asyncio.gather(*[one_tenant(i) for i in range(len(tenant_names))])
        finally:
            await asyncio.gather(
                *[client.close() for client in clients], return_exceptions=True
            )
        return outcome, time.perf_counter() - start

    async def run_point(workers: int) -> dict:
        engine = factory()
        serial_plans = serial_reference(engine)
        gateway = await start_gateway(engine, workers)
        try:
            cold, seconds = await tenant_storm(gateway, serial_plans)
            warm, _ = await tenant_storm(gateway, serial_plans)
            supervisor = gateway.supervisor
            requests_sent = len(tenant_names) * len(pipelines)
            return {
                "planner_workers": workers,
                "requests_sent": requests_sent,
                "requests_answered": cold["answered"],
                "seconds": seconds,
                "plans_per_sec": cold["answered"] / seconds
                if seconds > 0
                else float("inf"),
                "byte_identical": not cold["mismatched"] and not warm["mismatched"],
                "worker_attribution_ok": not cold["misrouted"]
                and not warm["misrouted"],
                "warm_round_all_cache_hits": warm["cache_hits"] == warm["answered"],
                "no_lost_requests": cold["answered"] == requests_sent,
                "restarts": supervisor.restarts_total if supervisor else 0,
                "mismatched": sorted(set(cold["mismatched"] + warm["mismatched"])),
            }
        finally:
            await gateway.stop()

    async def run_skew(workers: int) -> dict:
        """2-hot-tenant skewed load at the largest worker count."""
        engine = factory()
        serial_plans = serial_reference(engine)
        gateway = await start_gateway(engine, workers)
        try:
            supervisor = gateway.supervisor
            hot = list(tenant_names[:hot_tenants])
            light = [tenant for tenant in tenant_names if tenant not in hot]
            clients = {
                tenant: await GatewayClient(host, gateway.port).connect()
                for tenant in tenant_names
            }
            counters = {
                "mismatched_light": [],
                "misrouted": [],
                "hot_answered": 0,
                "hot_cache_hits": 0,
                "light_answered": 0,
            }

            async def drive(tenant: str, rounds: int, is_hot: bool) -> None:
                client = clients[tenant]
                expected_worker = (
                    supervisor.route(tenant) if supervisor is not None else None
                )
                for turn in range(rounds):
                    for name, expr in pipelines:
                        response = await client.submit(
                            expr, name=name, workspace=tenant
                        )
                        if (
                            expected_worker is not None
                            and response.get("worker") != expected_worker
                        ):
                            counters["misrouted"].append(f"{tenant}:{name}")
                        if is_hot:
                            counters["hot_answered"] += 1
                            if response.get("cache_hit"):
                                counters["hot_cache_hits"] += 1
                        else:
                            counters["light_answered"] += 1
                            if response["plan"] != serial_plans[tenant][name]:
                                counters["mismatched_light"].append(
                                    f"{tenant}:{name}"
                                )

            try:
                await asyncio.gather(
                    *[drive(tenant, hot_factor, True) for tenant in hot],
                    *[drive(tenant, 1, False) for tenant in light],
                )
            finally:
                await asyncio.gather(
                    *[client.close() for client in clients.values()],
                    return_exceptions=True,
                )
            hot_workers = sorted(
                {supervisor.route(tenant) for tenant in hot}
                if supervisor is not None
                else set()
            )
            expected_light = len(light) * len(pipelines)
            expected_hot = len(hot) * hot_factor * len(pipelines)
            return {
                "planner_workers": workers,
                "hot_tenants": hot,
                "hot_workers": hot_workers,
                "light_tenants_answered": counters["light_answered"],
                "hot_tenants_answered": counters["hot_answered"],
                "no_lost_requests": counters["light_answered"] == expected_light
                and counters["hot_answered"] == expected_hot,
                "light_byte_identical": not counters["mismatched_light"],
                "worker_attribution_ok": not counters["misrouted"],
                "hot_cache_hit_fraction": (
                    counters["hot_cache_hits"] / counters["hot_answered"]
                    if counters["hot_answered"]
                    else 0.0
                ),
                "restarts": supervisor.restarts_total if supervisor else 0,
            }
        finally:
            await gateway.stop()

    async def run_all() -> dict:
        points = [await run_point(workers) for workers in worker_counts]
        top = max(worker_counts)
        skew = await run_skew(top) if top > 0 else None
        return {"points": points, "skew": skew}

    outcome = asyncio.run(run_all())
    points = outcome["points"]
    by_count = {point["planner_workers"]: point for point in points}
    cpu_count = os.cpu_count() or 1
    floor = scaling_floor_multicore if cpu_count >= 4 else scaling_floor_fallback
    baseline = by_count.get(0) or points[0]
    top_point = by_count[max(worker_counts)]
    scaling = (
        top_point["plans_per_sec"] / baseline["plans_per_sec"]
        if baseline["plans_per_sec"] > 0
        else float("inf")
    )
    skew = outcome["skew"]
    summary = {
        "benchmark": "gateway_worker_sweep",
        "cpu_count": cpu_count,
        "pipelines": [name for name, _ in pipelines],
        "tenants": tenant_names,
        "worker_counts": worker_counts,
        "points": points,
        "skew": skew,
        "scaling": {
            "baseline_plans_per_sec": baseline["plans_per_sec"],
            "top_plans_per_sec": top_point["plans_per_sec"],
            "top_workers": top_point["planner_workers"],
            "scaling_x": scaling,
            "scaling_floor": floor,
            "floor_is_multicore": cpu_count >= 4,
            "meets_scaling_floor": scaling >= floor,
        },
        "acceptance": {
            "byte_identical_all_points": all(p["byte_identical"] for p in points),
            "worker_attribution_ok": all(
                p["worker_attribution_ok"] for p in points
            )
            and (skew is None or skew["worker_attribution_ok"]),
            "warm_rounds_all_cache_hits": all(
                p["warm_round_all_cache_hits"] for p in points
            ),
            "no_lost_requests": all(p["no_lost_requests"] for p in points)
            and (skew is None or skew["no_lost_requests"]),
            "skew_light_byte_identical": skew is None
            or skew["light_byte_identical"],
            "skew_hot_cache_hit_fraction": skew["hot_cache_hit_fraction"]
            if skew is not None
            else 1.0,
            "restarts_total": sum(p["restarts"] for p in points)
            + (skew["restarts"] if skew is not None else 0),
            "meets_scaling_floor": scaling >= floor,
        },
    }
    return summary


def print_report(title: str, runs: Sequence[PipelineRun]) -> str:
    """Format a block of pipeline runs as the benches print them."""
    lines = [f"== {title} =="]
    lines.extend(run.as_row() for run in runs)
    improved = [run for run in runs if run.changed]
    if runs:
        lines.append(
            f"-- {len(improved)}/{len(runs)} rewritten; "
            f"median speedup {sorted(run.speedup for run in runs)[len(runs) // 2]:.2f}x"
        )
    return "\n".join(lines)
