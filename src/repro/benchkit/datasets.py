"""The benchmark data environment (Tables 4, 5 and 6, scaled)."""

from __future__ import annotations

from typing import Dict

from repro.data.catalog import Catalog
from repro.data.generators import (
    DEFAULT_SCALE,
    standard_catalog,
    well_conditioned_square,
)

#: Role bindings of Table 6 (dense variant).  ``D`` is bound to a *second*
#: square matrix of Syn5's size (``Syn5b``) so that pipelines over C and D
#: exercise two distinct matrices, as in the paper.
ROLE_BINDINGS_DENSE: Dict[str, str] = {
    "A": "AL1",
    "B": "Syn3",
    "C": "Syn5",
    "D": "Syn5b",
    "M": "Syn1",
    "N": "Syn2",
    "R": "Syn10",
    "X": "AL3",
    "v1": "Syn7",
    "v2": "Syn8",
    "u1": "Syn9",
    "vD": "vSq",
}

#: Sparse variant: the ultra-sparse Amazon-like subset plays the role of M
#: (the paper's "AS in the role of M" runs).
ROLE_BINDINGS_SPARSE: Dict[str, str] = dict(ROLE_BINDINGS_DENSE, M="AS", A="NL1")


def benchmark_catalog(scale: float = DEFAULT_SCALE, include_real: bool = True) -> Catalog:
    """The catalog used by the LA benchmark: Tables 4/5 plus helpers.

    On top of :func:`repro.data.generators.standard_catalog` it adds
    ``Syn5b`` — a second well-conditioned square matrix of Syn5's size — so
    that the C / D roles of Table 6 are bound to distinct matrices.
    """
    catalog = standard_catalog(scale=scale, include_real=include_real)
    n = catalog.shape("Syn5")[0]
    catalog.register_matrix(well_conditioned_square("Syn5b", n, seed=1234))
    # A vector conformable with the square C/D matrices regardless of scale
    # (the paper's OLS pipeline P2.21 multiplies D^T by it).
    import numpy as np

    catalog.register_dense("vSq", np.random.default_rng(77).random((n, 1)))
    return catalog
