"""Benchmark kit: the paper's workloads, views, datasets and harness.

* :mod:`repro.benchkit.datasets` — the benchmark catalog (Tables 4/5/6,
  scaled for laptop execution);
* :mod:`repro.benchkit.pipelines` — the 57 LA pipelines of Tables 2 and 3,
  with the matrix role bindings of Table 6 and the P¬Opt / P_Views / P_Opt
  partition of §9.1;
* :mod:`repro.benchkit.views_vexp` — the view set V_exp of Table 14;
* :mod:`repro.benchkit.expected` — the expected rewrites of Tables 12/13/15;
* :mod:`repro.benchkit.harness` — timing of original vs rewritten pipelines
  (Q_exec, RW_find, RW_exec) on a chosen backend, plus the end-to-end
  service concurrency sweep (:func:`~repro.benchkit.harness.run_service_sweep`);
* :mod:`repro.benchkit.hybrid_queries` — the micro-hybrid benchmark queries
  Q1–Q10 of Table 7 / Appendix G over the synthetic Twitter / MIMIC data.
"""

from repro.benchkit.datasets import benchmark_catalog, ROLE_BINDINGS_DENSE, ROLE_BINDINGS_SPARSE
from repro.benchkit.pipelines import (
    PIPELINES,
    P_NO_OPT,
    P_VIEWS,
    P_OPT,
    build_pipeline,
    pipeline_names,
)
from repro.benchkit.views_vexp import VEXP_VIEWS, build_vexp_views
from repro.benchkit.expected import EXPECTED_REWRITES, build_expected_rewrite
from repro.benchkit.harness import (
    PipelineRun,
    materialize_views,
    run_pipeline,
    run_pipelines,
    run_service_sweep,
    run_workspace_sweep,
)

__all__ = [
    "benchmark_catalog",
    "ROLE_BINDINGS_DENSE",
    "ROLE_BINDINGS_SPARSE",
    "PIPELINES",
    "P_NO_OPT",
    "P_VIEWS",
    "P_OPT",
    "build_pipeline",
    "pipeline_names",
    "VEXP_VIEWS",
    "build_vexp_views",
    "EXPECTED_REWRITES",
    "build_expected_rewrite",
    "PipelineRun",
    "run_pipeline",
    "run_pipelines",
    "run_service_sweep",
    "run_workspace_sweep",
    "materialize_views",
]
