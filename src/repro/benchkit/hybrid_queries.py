"""The micro-hybrid benchmark: queries Q1–Q10 of Table 7 / Appendix G.

Each query has the same RA preprocessing — build the dense joined feature
matrix ``M`` and the ultra-sparse filtered fact matrix ``N`` — and a
different LA analysis pipeline (Table 7).  The auxiliary dense matrices
(X, C, u, v) are synthesised with shapes derived from the dataset spec, as
in the paper; where the paper's informal pipeline text is dimensionally
ambiguous the closest conformable reading is used (documented per query).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.constraints.views import LAView
from repro.data.catalog import Catalog
from repro.data.datasets import HybridDatasetSpec
from repro.hybrid.query import HybridQuery, JoinFeatureMatrix, PivotSparseMatrix
from repro.lang import matrix_expr as mx
from repro.lang.builder import (
    colsums,
    hadamard,
    matrix,
    rowsums,
    sub,
    sum_all,
    trace,
    transpose,
)
from repro.lang.relational_expr import Predicate

_t = transpose


def _ensure_auxiliaries(catalog: Catalog, spec: HybridDatasetSpec, seed: int = 5) -> None:
    """Register the synthetic dense auxiliaries used by Table 7 (idempotent)."""
    rng = np.random.default_rng(seed)
    n, f, h = spec.n_entities, spec.n_features, spec.n_fact_columns
    shapes = {
        "AUX_Xhn": (h, n),   # X of Q1/Q4/Q6: h x n
        "AUX_Cnh": (n, h),   # dense n x h matrix (C in Q4, X in Q3/Q9)
        "AUX_Cnh2": (n, h),  # a second dense n x h matrix (Q10)
        "AUX_Xfh": (f, h),   # X of Q5/Q8: f x h
        "AUX_Xfn": (f, n),   # X of Q7 / C of Q9: f x n
        "AUX_Chh": (h, h),   # square h x h matrix (Q8)
        "AUX_un": (n, 1),    # entity-sized vector
        "AUX_vh": (h, 1),    # fact-column-sized vector
    }
    for name, shape in shapes.items():
        if not catalog.has_matrix(name):
            catalog.register_dense(name, rng.random(shape))


def twitter_builders(spec: HybridDatasetSpec, measure_filter=("<=", 4.0)) -> Tuple:
    """The M / N matrix builders of the Twitter benchmark."""
    feature_m = JoinFeatureMatrix(
        name="Mfeat",
        left_table="Tweet",
        right_table="User",
        key="id",
        left_columns=(
            "favorite_count", "quote_count", "reply_count", "retweet_count",
            "favorited", "possibly_sensitive", "retweeted",
        ),
        right_columns=(
            "followers_count", "friends_count", "listed_count", "protected", "verified",
        ),
    )
    sparse_n = PivotSparseMatrix(
        name="Nsparse",
        fact_table="TweetTag",
        row_key="id",
        col_key="hashtag_id",
        measure="filter_level",
        n_rows=spec.n_entities,
        n_cols=spec.n_fact_columns,
        filters=(Predicate("text", "like", "covid"), Predicate("country", "==", "US")),
        measure_filter=measure_filter,
    )
    return feature_m, sparse_n


def mimic_builders(spec: HybridDatasetSpec, care_unit: str = "CCU") -> Tuple:
    """The M / N matrix builders of the MIMIC benchmark."""
    feature_m = JoinFeatureMatrix(
        name="Mfeat",
        left_table="Admissions",
        right_table="Patients",
        key="id",
        left_columns=tuple(f"a_feat_{i}" for i in range(62)),
        right_columns=tuple(f"p_feat_{i}" for i in range(20)),
    )
    sparse_n = PivotSparseMatrix(
        name="Nsparse",
        fact_table="Callout",
        row_key="id",
        col_key="service_id",
        measure="outcome",
        n_rows=spec.n_entities,
        n_cols=spec.n_fact_columns,
        filters=(Predicate("care_unit", "==", care_unit),),
        measure_filter=("==", 2.0),
    )
    return feature_m, sparse_n


def _analysis_pipelines() -> Dict[str, mx.Expr]:
    """The ten Q_LA pipelines of Table 7 over M, N and the auxiliaries."""
    M, N = matrix("Mfeat"), matrix("Nsparse")
    Xhn, Cnh, Cnh2 = matrix("AUX_Xhn"), matrix("AUX_Cnh"), matrix("AUX_Cnh2")
    Xfh, Xfn, Chh = matrix("AUX_Xfh"), matrix("AUX_Xfn"), matrix("AUX_Chh")
    u_n, v_h = matrix("AUX_un"), matrix("AUX_vh")
    return {
        # Q1 — P3.1: rowSums(X M) + (u v^T + N^T) v
        "Q1": rowsums(Xhn @ M) + (v_h @ _t(u_n) + _t(N)) @ u_n,
        # Q2 — P3.2: u colSums((X M)^T) + N
        "Q2": u_n @ colsums(_t(Xhn @ M)) + N,
        # Q3 — P3.3: ((N + X) v) colSums(M)
        "Q3": ((N + Cnh) @ v_h) @ colsums(M),
        # Q4 — P3.4: sum(C + N rowSums(X M) v^T)
        "Q4": sum_all(Cnh + (N @ rowsums(Xhn @ M)) @ _t(v_h)),
        # Q5 — P3.5: u colSums(M X) + N
        "Q5": u_n @ colsums(M @ Xfh) + N,
        # Q6 — P3.6: rowSums((M X)^T) + (u v^T + N^T) v
        "Q6": rowsums(_t(M @ Xfh)) + (v_h @ _t(u_n) + _t(N)) @ u_n,
        # Q7 — P3.7: X N u + colSums(M)^T
        "Q7": (Xfn @ N) @ v_h + _t(colsums(M)),
        # Q8 — P3.8: N ⊙ trace(C + v colSums(M X) C)
        "Q8": hadamard(N, trace(Chh + (v_h @ colsums(M @ Xfh)) @ Chh)),
        # Q9 — P3.9: X ⊙ sum(colSums(C)^T ⊙ rowSums(M)) + N
        "Q9": hadamard(Cnh, sum_all(hadamard(_t(colsums(Xfn)), rowsums(M)))) + N,
        # Q10 — P3.10: N ⊙ sum((X + C) M)
        "Q10": hadamard(N, sum_all((Xhn + _t(Cnh2)) @ M)),
    }


def hybrid_queries(
    catalog: Catalog,
    spec: HybridDatasetSpec,
    dataset: str = "twitter",
    care_unit: str = "CCU",
    measure_filter=("<=", 4.0),
) -> List[HybridQuery]:
    """Build Q1..Q10 for the given dataset catalog."""
    _ensure_auxiliaries(catalog, spec)
    if dataset == "twitter":
        builders = twitter_builders(spec, measure_filter)
    elif dataset == "mimic":
        builders = mimic_builders(spec, care_unit)
    else:
        raise ValueError(f"unknown hybrid dataset {dataset!r}")
    pipelines = _analysis_pipelines()
    return [
        HybridQuery(name=name, builders=builders, analysis=analysis,
                    description=f"micro-hybrid {dataset} {name}")
        for name, analysis in pipelines.items()
    ]


def hybrid_views(catalog: Catalog) -> List[LAView]:
    """The hybrid materialized views V3 / V4 / V5 of §9.2.2.

    They are defined over the Morpheus factor matrices of ``Mfeat``
    (``Mfeat__S``, ``Mfeat__K``, ``Mfeat__R``), which the hybrid optimizer
    materializes; rewritings can only reach them by combining LA properties
    with the Morpheus factorization constraints, as in the paper.
    """
    S, K, R = matrix("Mfeat__S"), matrix("Mfeat__K"), matrix("Mfeat__R")
    return [
        LAView("V3h", rowsums(S) + K @ rowsums(R)),
        LAView("V4h", mx.CBind(colsums(S), colsums(K) @ R)),
        LAView("V5h", mx.CBind(matrix("AUX_Xhn") @ S, (matrix("AUX_Xhn") @ K) @ R)),
    ]
