"""The LA benchmark pipelines of Tables 2 and 3.

Each pipeline is a function of a *role environment* — a mapping of the role
names of Table 6 (A, B, C, D, M, N, R, X, v1, v2, u1, s1, s2) to expressions
— so the same definition can be instantiated over the dense bindings, the
sparse bindings, or any ad-hoc matrices in tests.

The partition of §9.1 is also defined here:

* ``P_NO_OPT``  — the 38 pipelines whose performance improves purely by
  exploiting LA properties (no views), Tables 12/13;
* ``P_VIEWS``   — the 30 pipelines sped up by the V_exp views, Table 15;
* ``P_OPT``     — the remaining, already-optimal pipelines (§9.1.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from repro.lang import matrix_expr as mx
from repro.lang.builder import (
    colsums,
    det,
    elem_div,
    hadamard,
    inv,
    mat_exp,
    matrix,
    rowsums,
    scalar,
    scalar_mul,
    sub,
    sum_all,
    trace,
    transpose,
)

Env = Mapping[str, mx.Expr]
PipelineFn = Callable[[Env], mx.Expr]


def default_roles(bindings: Mapping[str, str]) -> Dict[str, mx.Expr]:
    """Turn a role → matrix-name binding (Table 6) into a role environment."""
    roles: Dict[str, mx.Expr] = {role: matrix(name) for role, name in bindings.items()}
    roles.setdefault("s1", scalar("s1"))
    roles.setdefault("s2", scalar("s2"))
    return roles


# --------------------------------------------------------------------------- helpers
def _t(expr):
    return transpose(expr)


PIPELINES: Dict[str, PipelineFn] = {
    # ----------------------------------------------------- Table 2 (P1.x)
    "P1.1": lambda r: _t(r["M"] @ r["N"]),
    "P1.2": lambda r: _t(r["A"]) + _t(r["B"]),
    "P1.3": lambda r: inv(r["C"]) @ inv(r["D"]),
    "P1.4": lambda r: (r["A"] + r["B"]) @ r["v1"],
    "P1.5": lambda r: inv(inv(r["D"])),
    "P1.6": lambda r: trace(scalar_mul(r["s1"], r["D"])),
    "P1.7": lambda r: _t(_t(r["A"])),
    "P1.8": lambda r: scalar_mul(r["s1"], r["A"]) + scalar_mul(r["s2"], r["A"]),
    "P1.9": lambda r: det(_t(r["D"])),
    "P1.10": lambda r: rowsums(_t(r["A"])),
    "P1.11": lambda r: rowsums(_t(r["A"]) + _t(r["B"])),
    "P1.12": lambda r: colsums(r["M"] @ r["N"]),
    "P1.13": lambda r: sum_all(r["M"] @ r["N"]),
    "P1.14": lambda r: sum_all(colsums(_t(r["N"]) @ _t(r["M"]))),
    "P1.15": lambda r: (r["M"] @ r["N"]) @ r["M"],
    "P1.16": lambda r: sum_all(_t(r["A"])),
    "P1.17": lambda r: det((r["C"] @ r["D"]) @ r["C"]),
    "P1.18": lambda r: sum_all(colsums(r["A"])),
    "P1.19": lambda r: inv(_t(r["C"])),
    "P1.20": lambda r: trace(inv(r["C"])),
    "P1.21": lambda r: _t(r["C"] + inv(r["D"])),
    "P1.22": lambda r: trace(inv(r["C"] + r["D"])),
    "P1.23": lambda r: det(inv(r["C"] @ r["D"]) + r["D"]),
    "P1.24": lambda r: trace(inv(r["C"] @ r["D"])) + trace(r["D"]),
    "P1.25": lambda r: hadamard(
        r["M"], elem_div(_t(r["N"]), (r["M"] @ r["N"]) @ _t(r["N"]))
    ),
    "P1.26": lambda r: hadamard(
        r["N"], elem_div(_t(r["M"]), (_t(r["M"]) @ r["M"]) @ r["N"])
    ),
    "P1.27": lambda r: trace(r["D"] @ _t(r["C"] @ r["D"])),
    "P1.28": lambda r: hadamard(r["A"], hadamard(r["A"], r["B"]) + r["A"]),
    "P1.29": lambda r: ((r["D"] @ r["C"]) @ r["C"]) @ r["C"],
    "P1.30": lambda r: hadamard(r["N"] @ r["M"], (r["N"] @ r["M"]) @ _t(r["R"])),
    # ----------------------------------------------------- Table 3 (P2.x)
    "P2.1": lambda r: trace(r["C"] + r["D"]),
    "P2.2": lambda r: det(inv(r["D"])),
    "P2.3": lambda r: trace(_t(r["D"])),
    "P2.4": lambda r: scalar_mul(r["s1"], r["A"]) + scalar_mul(r["s1"], r["B"]),
    "P2.5": lambda r: det(inv(r["C"] + r["D"])),
    "P2.6": lambda r: _t(r["C"]) @ inv(_t(r["D"])),
    "P2.7": lambda r: (r["D"] @ inv(r["D"])) @ r["C"],
    "P2.8": lambda r: det(_t(r["C"]) @ r["D"]),
    "P2.9": lambda r: trace(_t(r["C"]) @ _t(r["D"]) + r["D"]),
    "P2.10": lambda r: rowsums(r["M"] @ r["N"]),
    "P2.11": lambda r: sum_all(r["A"] + r["B"]),
    "P2.12": lambda r: sum_all(rowsums(_t(r["N"]) @ _t(r["M"]))),
    "P2.13": lambda r: _t((r["M"] @ r["N"]) @ r["M"]),
    "P2.14": lambda r: ((r["M"] @ r["N"]) @ r["M"]) @ r["N"],
    "P2.15": lambda r: sum_all(rowsums(r["A"])),
    "P2.16": lambda r: trace(inv(r["C"]) @ inv(r["D"])) + trace(r["D"]),
    "P2.17": lambda r: ((_t(inv(r["C"] + r["D"])) @ inv(inv(r["D"]))) @ inv(r["C"])) @ r["C"],
    "P2.18": lambda r: colsums(_t(r["A"]) + _t(r["B"])),
    "P2.19": lambda r: inv(_t(r["C"]) @ r["D"]),
    "P2.20": lambda r: _t(r["M"] @ (r["N"] @ r["M"])),
    "P2.21": lambda r: inv(_t(r["D"]) @ r["D"])
    @ (_t(r["D"]) @ (r["vD"] if "vD" in r else r["v1"])),
    "P2.22": lambda r: mat_exp(_t(r["C"] + r["D"])),
    "P2.23": lambda r: hadamard(det(r["C"]), hadamard(det(r["D"]), det(r["C"]))),
    "P2.24": lambda r: _t(inv(r["D"]) @ r["C"]),
    "P2.25": lambda r: sub(r["u1"] @ _t(r["v2"]), r["X"]) @ r["v2"],
    "P2.26": lambda r: mat_exp(inv(r["C"] + r["D"])),
    "P2.27": lambda r: (inv(_t(r["C"] + r["D"])) @ r["D"]) @ r["C"],
}

#: Pipelines whose performance improves by LA-property rewriting alone
#: (Tables 12 and 13).
P_NO_OPT: List[str] = [
    "P1.1", "P1.2", "P1.3", "P1.4", "P1.5", "P1.6", "P1.7", "P1.8", "P1.9",
    "P1.10", "P1.11", "P1.12", "P1.13", "P1.14", "P1.15", "P1.16", "P1.17",
    "P1.18", "P1.25",
    "P2.1", "P2.2", "P2.3", "P2.4", "P2.5", "P2.6", "P2.7", "P2.8", "P2.9",
    "P2.10", "P2.11", "P2.12", "P2.13", "P2.14", "P2.15", "P2.16", "P2.17",
    "P2.18", "P2.25",
]

#: Pipelines sped up by the V_exp views (Table 15).
P_VIEWS: List[str] = [
    "P1.2", "P1.3", "P1.4", "P1.11", "P1.15", "P1.17", "P1.19", "P1.20",
    "P1.21", "P1.22", "P1.23", "P1.24", "P1.29", "P1.30",
    "P2.2", "P2.4", "P2.5", "P2.6", "P2.9", "P2.11", "P2.13", "P2.14",
    "P2.16", "P2.17", "P2.18", "P2.20", "P2.21", "P2.25", "P2.26", "P2.27",
]

#: Pipelines that are already (close to) optimal as stated (§9.1.3).
P_OPT: List[str] = sorted(set(PIPELINES) - set(P_NO_OPT))


def pipeline_names() -> List[str]:
    """All pipeline identifiers, in table order."""
    return list(PIPELINES)


def build_pipeline(name: str, roles: Env) -> mx.Expr:
    """Instantiate one pipeline over a role environment."""
    return PIPELINES[name](roles)
