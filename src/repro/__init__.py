"""repro — a reproduction of HADAD (SIGMOD 2021).

HADAD is a lightweight, extensible approach for optimizing hybrid complex
analytics queries that mix relational algebra (RA) and linear algebra (LA).
Everything is reduced to a relational model with integrity constraints: LA
operations become virtual relations, LA properties / system rewrite rules /
materialized views become TGD and EGD constraints, and a provenance-aware
chase & backchase with cost-based pruning finds the minimum-cost equivalent
rewriting, which is decoded back to LA syntax and executed unchanged on the
underlying platform.

Rewriting runs as a staged planner pipeline (encode → saturate → annotate →
extract → post-optimize) driven by :class:`repro.planner.PlanSession`, which
owns the long-lived state: the constraint set compiled once into an indexed
program, the saturation engine, and a fingerprint-keyed rewrite cache.
:class:`HadadOptimizer` is the stable façade over a session.

On top of the planner sits the service layer (:mod:`repro.service`):
:class:`AnalyticsService` plans concurrently on a
:class:`~repro.service.PlanSessionPool` and routes finished plans to the
execution backends through an :class:`~repro.service.ExecutionRouter`,
answering with per-phase (queue / plan / execute) timings.

Quick start::

    from repro import HadadOptimizer, LAView
    from repro.lang import matrix, inv, transpose
    from repro.data.generators import standard_catalog

    catalog = standard_catalog(scale=0.01)
    X, y = matrix("Syn5"), matrix("Syn7")
    ols = inv(transpose(X) @ X) @ (transpose(X) @ y)

    optimizer = HadadOptimizer(catalog, views=[LAView("V1", inv(X))])
    result = optimizer.rewrite(ols)
    print(result.summary())

See README.md for the architecture overview, ``docs/architecture.md`` for
the full layer diagram, ``docs/tutorial.md`` for an end-to-end walkthrough
and the ``benchmarks/`` directory for the reproduction of the paper's
evaluation.
"""

from repro.core import HadadOptimizer, LAView, PlanSession, RewriteResult
from repro.data import Catalog, MatrixData, MatrixMeta, Table
from repro.cost import MNCEstimator, NaiveMetadataEstimator
from repro.service import (
    AnalyticsService,
    ExecutionRouter,
    PlanSessionPool,
    ServiceRequest,
    ServiceResult,
)

__version__ = "1.2.0"

__all__ = [
    "HadadOptimizer",
    "LAView",
    "PlanSession",
    "RewriteResult",
    "AnalyticsService",
    "ServiceRequest",
    "ServiceResult",
    "PlanSessionPool",
    "ExecutionRouter",
    "Catalog",
    "MatrixData",
    "MatrixMeta",
    "Table",
    "MNCEstimator",
    "NaiveMetadataEstimator",
    "__version__",
]
