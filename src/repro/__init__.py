"""repro — a reproduction of HADAD (SIGMOD 2021).

HADAD is a lightweight, extensible approach for optimizing hybrid complex
analytics queries that mix relational algebra (RA) and linear algebra (LA).
Everything is reduced to a relational model with integrity constraints: LA
operations become virtual relations, LA properties / system rewrite rules /
materialized views become TGD and EGD constraints, and a provenance-aware
chase & backchase with cost-based pruning finds the minimum-cost equivalent
rewriting, which is decoded back to LA syntax and executed unchanged on the
underlying platform.

Quick start::

    from repro import HadadOptimizer, LAView
    from repro.lang import matrix, inv, transpose
    from repro.data.generators import standard_catalog

    catalog = standard_catalog(scale=0.01)
    X, y = matrix("Syn5"), matrix("Syn8")
    ols = inv(transpose(X) @ X) @ (transpose(X) @ y)

    optimizer = HadadOptimizer(catalog, views=[LAView("V1", inv(X))])
    result = optimizer.rewrite(ols)
    print(result.summary())

See README.md for the architecture overview and EXPERIMENTS.md for the
reproduction of the paper's evaluation.
"""

from repro.core import HadadOptimizer, LAView, RewriteResult
from repro.data import Catalog, MatrixData, MatrixMeta, Table
from repro.cost import MNCEstimator, NaiveMetadataEstimator

__version__ = "1.0.0"

__all__ = [
    "HadadOptimizer",
    "LAView",
    "RewriteResult",
    "Catalog",
    "MatrixData",
    "MatrixMeta",
    "Table",
    "MNCEstimator",
    "NaiveMetadataEstimator",
    "__version__",
]
