"""repro — a reproduction of HADAD (SIGMOD 2021).

HADAD is a lightweight, extensible approach for optimizing hybrid complex
analytics queries that mix relational algebra (RA) and linear algebra (LA).
Everything is reduced to a relational model with integrity constraints: LA
operations become virtual relations, LA properties / system rewrite rules /
materialized views become TGD and EGD constraints, and a provenance-aware
chase & backchase with cost-based pruning finds the minimum-cost equivalent
rewriting, which is decoded back to LA syntax and executed unchanged on the
underlying platform.

Rewriting runs as a staged planner pipeline (encode → saturate → annotate →
extract → post-optimize) driven by :class:`repro.planner.PlanSession`, which
owns the long-lived state: the constraint set compiled once into an indexed
program, the saturation engine, and a fingerprint-keyed rewrite cache.

The public entry point is :class:`repro.api.Engine`: one typed,
multi-tenant object — named, versioned workspace bundles
(:class:`repro.api.WorkspaceRegistry`; ``engine.workspace(name)``) — over
the planner (``engine.rewrite``), the concurrent service layer
(``engine.submit_many``; :mod:`repro.service` plans on a
:class:`~repro.service.PlanSessionPool` and routes finished plans to the
execution backends through a capability-negotiated
:class:`~repro.service.ExecutionRouter`), the execution substrates
(``engine.execute``) and the asyncio serving gateway
(``await engine.serve()``).  Options travel as frozen, validated config
dataclasses (:class:`EngineConfig` and friends).  The historical entry
points — :class:`HadadOptimizer`, ``HybridOptimizer``,
:class:`AnalyticsService`, ``AnalyticsGateway`` — remain as
behavior-preserving deprecation shims.

Quick start::

    from repro import Engine, LAView
    from repro.lang import matrix, inv, transpose
    from repro.data.generators import standard_catalog

    catalog = standard_catalog(scale=0.01)
    X, y = matrix("Syn5"), matrix("Syn7")
    ols = inv(transpose(X) @ X) @ (transpose(X) @ y)

    engine = Engine(catalog, views=[LAView("V1", inv(X))])
    result = engine.rewrite(ols)
    print(result.summary())

See README.md for the architecture overview, ``docs/architecture.md`` for
the full layer diagram, ``docs/tutorial.md`` for an end-to-end walkthrough
and the ``benchmarks/`` directory for the reproduction of the paper's
evaluation.
"""

from repro.core import HadadOptimizer, LAView, PlanSession, RewriteResult
from repro.data import Catalog, MatrixData, MatrixMeta, Table
from repro.cost import MNCEstimator, NaiveMetadataEstimator
from repro.service import (
    AnalyticsService,
    ExecutionRouter,
    PlanSessionPool,
    ServiceRequest,
    ServiceResult,
)
from repro.api import (
    BackendCapabilities,
    BackendRegistry,
    ConfigError,
    Engine,
    EngineConfig,
    GatewayConfig,
    PlannerConfig,
    ServiceConfig,
    UnknownWorkspaceError,
    Workspace,
    WorkspaceHandle,
    WorkspaceRegistry,
)

__version__ = "1.3.0"

__all__ = [
    "Engine",
    "Workspace",
    "WorkspaceHandle",
    "WorkspaceRegistry",
    "UnknownWorkspaceError",
    "EngineConfig",
    "PlannerConfig",
    "ServiceConfig",
    "GatewayConfig",
    "BackendRegistry",
    "BackendCapabilities",
    "ConfigError",
    "HadadOptimizer",
    "LAView",
    "PlanSession",
    "RewriteResult",
    "AnalyticsService",
    "ServiceRequest",
    "ServiceResult",
    "PlanSessionPool",
    "ExecutionRouter",
    "Catalog",
    "MatrixData",
    "MatrixMeta",
    "Table",
    "MNCEstimator",
    "NaiveMetadataEstimator",
    "__version__",
]
