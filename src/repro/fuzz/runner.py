"""The fixed-budget fuzz sweep: generate → plan → check → shrink → persist.

One :func:`run_fuzz` call is one CI sweep: a fixed expression budget spread
over several synthetic catalogs (fresh dimensions, density and view set per
batch, all derived from the master seed), every expression pushed through
the :class:`~repro.fuzz.oracle.DifferentialOracle`, every violation shrunk
to a locally minimal repro and written to the output directory in the
corpus format.  The returned summary is JSON-printable and carries the
exact command reproducing the sweep locally — CI prints it on failure, so
a red fuzz job is always one copy-paste away from a local repro.

Determinism: per-batch and per-expression RNGs are spawned from the master
seed with :func:`~repro.fuzz.generator.spawn_rng`, so case ``N`` of batch
``B`` is the same expression regardless of how many prior cases were
violations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.benchkit.harness import materialize_views
from repro.lang import matrix_expr as mx

from repro.fuzz.corpus import CorpusCase, save_case
from repro.fuzz.generator import (
    CatalogInventory,
    CatalogSpec,
    ExpressionGenerator,
    generate_catalog,
    spawn_rng,
)
from repro.fuzz.oracle import DifferentialOracle, NnzObservation, OracleReport
from repro.fuzz.shrinker import shrink

#: Dimension pool batches draw their catalog axes from.  Small on purpose:
#: the oracle executes every expression on three backends, and equivalence
#: bugs are size-independent.
DIM_POOL = (2, 3, 4, 5, 6, 8)
DENSITY_POOL = (0.2, 0.3, 0.5)


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one sweep; defaults match the CI job."""

    budget: int = 300
    seed: int = 20260808
    expressions_per_catalog: int = 25
    n_views: int = 2
    max_depth: int = 5
    estimator: str = "mnc"
    shrink: bool = True
    out_dir: Optional[Path] = None
    collect_observations: bool = False


@dataclass
class FuzzOutcome:
    """Everything one sweep produced."""

    config: FuzzConfig
    checked: int = 0
    skipped: int = 0
    cases: List[CorpusCase] = field(default_factory=list)
    saved_paths: List[Path] = field(default_factory=list)
    #: Per-backend execute timings of every clean expression (seconds).
    timings: List[Dict[str, float]] = field(default_factory=list)
    nnz_observations: List[NnzObservation] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def violations(self) -> int:
        return len(self.cases)

    def summary(self) -> dict:
        return {
            "benchmark": "fuzz_sweep",
            "seed": self.config.seed,
            "budget": self.config.budget,
            "estimator": self.config.estimator,
            "checked": self.checked,
            "skipped": self.skipped,
            "violations": self.violations,
            "cases": [str(path) for path in self.saved_paths],
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "repro_command": (
                f"python -m repro.fuzz --budget {self.config.budget} "
                f"--seed {self.config.seed} --estimator {self.config.estimator}"
            ),
            "acceptance": {
                "budget_exhausted": self.checked + self.skipped >= self.config.budget,
                "no_violations": self.violations == 0,
            },
        }


def _batch_spec(master_seed: int, batch: int) -> CatalogSpec:
    rng = spawn_rng(master_seed, batch, 0)
    dims = tuple(
        sorted(rng.choice(len(DIM_POOL), size=3, replace=False).tolist())
    )
    return CatalogSpec(
        seed=int(rng.integers(0, 2**31)),
        dims=tuple(DIM_POOL[i] for i in dims),
        sparse_density=float(DENSITY_POOL[int(rng.integers(0, len(DENSITY_POOL)))]),
    )


def _leaf_factory(inventory: CatalogInventory):
    """Deterministic shape→leaf replacement used by the shrinker."""

    def factory(shape):
        if shape == (1, 1):
            return mx.ScalarConst(0.75)
        names = inventory.by_shape.get(shape)
        if names:
            return mx.MatrixRef(sorted(names)[0])
        if shape[0] == shape[1]:
            return mx.Identity(shape[0])
        return None

    return factory


def _minimize(
    oracle: DifferentialOracle,
    inventory: CatalogInventory,
    report: OracleReport,
    do_shrink: bool,
) -> mx.Expr:
    if not do_shrink:
        return report.expr

    def still_fails(candidate: mx.Expr) -> bool:
        return bool(oracle.check(candidate).violations)

    return shrink(
        report.expr,
        still_fails,
        oracle.catalog,
        leaf_factory=_leaf_factory(inventory),
        max_steps=40,
    )


def run_fuzz(config: FuzzConfig) -> FuzzOutcome:
    """Run one fixed-budget sweep; see the module docstring."""
    outcome = FuzzOutcome(config=config)
    started = time.perf_counter()
    batch = 0
    remaining = config.budget
    while remaining > 0:
        spec = _batch_spec(config.seed, batch)
        catalog, inventory = generate_catalog(spec)
        view_generator = ExpressionGenerator(
            inventory, spawn_rng(config.seed, batch, 1), max_depth=3
        )
        views = view_generator.generate_views(config.n_views)
        materialize_views(views, catalog)
        oracle = DifferentialOracle(catalog, views=views, estimator_name=config.estimator)

        for index in range(min(config.expressions_per_catalog, remaining)):
            generator = ExpressionGenerator(
                inventory, spawn_rng(config.seed, batch, 2, index), max_depth=config.max_depth
            )
            expr = generator.generate()
            report = oracle.check(expr, collect_observations=config.collect_observations)
            if report.error is not None:
                # The *reference* evaluation was unusable (non-finite /
                # unexecutable) — nothing to compare against, not a finding.
                outcome.skipped += 1
                continue
            outcome.checked += 1
            if report.violations:
                minimized = _minimize(oracle, inventory, report, config.shrink)
                final_report = (
                    report if minimized is report.expr else oracle.check(minimized)
                )
                case = CorpusCase(
                    case_id=f"fuzz-{config.seed}-b{batch:03d}-e{index:03d}",
                    expr=minimized,
                    catalog_spec=spec,
                    views=tuple(views),
                    seed=config.seed,
                    estimator=config.estimator,
                    violations=tuple(final_report.violations or report.violations),
                    notes=f"found by run_fuzz(seed={config.seed}) batch={batch} index={index}",
                )
                outcome.cases.append(case)
                if config.out_dir is not None:
                    outcome.saved_paths.append(save_case(Path(config.out_dir), case))
            else:
                if report.timings:
                    outcome.timings.append(dict(report.timings))
                outcome.nnz_observations.extend(report.nnz_observations)
        remaining -= min(config.expressions_per_catalog, remaining)
        batch += 1
    outcome.elapsed_seconds = time.perf_counter() - started
    return outcome


__all__ = ["DENSITY_POOL", "DIM_POOL", "FuzzConfig", "FuzzOutcome", "run_fuzz"]
