"""Greedy minimization of failing expressions.

When the oracle flags an expression, the raw counterexample is usually a
depth-5 tree where only one two-node corner matters.  :func:`shrink`
reduces it to a *locally minimal* repro: no single reduction step from the
result still fails.  The reduction moves, tried largest-win first on every
node of the tree:

1. **hoist** — replace a node by one of its children of the same inferred
   shape (deletes an operator);
2. **leaf substitution** — replace a whole subtree by a deterministic
   catalog leaf of the same shape (deletes a subtree);
3. **payload decay** — shrink ``MatPow`` exponents toward 0.

Every candidate is shape-checked before the (expensive) ``still_fails``
predicate runs, and each adopted step strictly decreases the node count, so
the loop terminates in at most ``size(expr)`` iterations (a hard step cap
guards pathological predicates anyway).

The predicate is caller-supplied — typically "the oracle still reports a
violation of the same kind" — which keeps the shrinker independent of what
*failing* means and reusable from tests.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

from repro.exceptions import ShapeError, UnknownMatrixError
from repro.lang import matrix_expr as mx
from repro.lang.shapes import shape_of

from repro.fuzz.oracle import rebuild_node

Shape = Tuple[int, int]
LeafFactory = Callable[[Shape], Optional[mx.Expr]]


def expr_size(expr: mx.Expr) -> int:
    """Node count of the expression tree."""
    return 1 + sum(expr_size(child) for child in expr.children)


def _safe_shape(expr: mx.Expr, shapes) -> Optional[Shape]:
    try:
        return shape_of(expr, shapes)
    except (ShapeError, UnknownMatrixError):
        return None


def _replace_at(expr: mx.Expr, path: Tuple[int, ...], replacement: mx.Expr) -> mx.Expr:
    if not path:
        return replacement
    index = path[0]
    children = list(expr.children)
    children[index] = _replace_at(children[index], path[1:], replacement)
    return rebuild_node(expr, tuple(children))


def _nodes_with_paths(expr: mx.Expr, path: Tuple[int, ...] = ()) -> Iterator[Tuple[Tuple[int, ...], mx.Expr]]:
    yield path, expr
    for index, child in enumerate(expr.children):
        yield from _nodes_with_paths(child, path + (index,))


def _candidates(
    expr: mx.Expr,
    shapes,
    leaf_factory: Optional[LeafFactory],
) -> Iterator[mx.Expr]:
    """Strictly smaller, shape-preserving variants of ``expr``."""
    for path, node in _nodes_with_paths(expr):
        if not node.children:
            continue
        node_shape = _safe_shape(node, shapes)
        if node_shape is None:
            continue
        # 1. hoist a same-shape child over its parent.
        for child in node.children:
            if _safe_shape(child, shapes) == node_shape:
                yield _replace_at(expr, path, child)
        # 2. collapse the subtree to a deterministic catalog leaf.
        if leaf_factory is not None:
            leaf = leaf_factory(node_shape)
            if leaf is not None and expr_size(leaf) < expr_size(node):
                yield _replace_at(expr, path, leaf)
        # 3. decay MatPow exponents toward the cheapest power.
        if isinstance(node, mx.MatPow) and node.exponent > 0:
            yield _replace_at(expr, path, mx.MatPow(node.child, node.exponent - 1))


def shrink(
    expr: mx.Expr,
    still_fails: Callable[[mx.Expr], bool],
    shapes,
    leaf_factory: Optional[LeafFactory] = None,
    max_steps: int = 200,
) -> mx.Expr:
    """Reduce ``expr`` to a locally minimal expression where ``still_fails``.

    ``shapes`` is anything :func:`repro.lang.shapes.shape_of` accepts (a
    catalog or a name→shape mapping); ``leaf_factory`` optionally supplies a
    deterministic replacement leaf per shape (the fuzz runner passes one
    drawn from the synthetic catalog's inventory).  ``expr`` itself is
    returned unchanged if no reduction reproduces the failure.
    """
    current = expr
    for _ in range(max_steps):
        for candidate in _candidates(current, shapes, leaf_factory):
            if expr_size(candidate) >= expr_size(current):
                continue
            if still_fails(candidate):
                current = candidate
                break
        else:
            break
    return current


__all__ = ["LeafFactory", "expr_size", "shrink"]
