"""The differential oracle: is a rewrite *actually* equivalent?

Each generated expression is planned through :meth:`repro.api.Engine.rewrite`
and the result is checked against two independent notions of equivalence —
neither of which trusts the planner:

**Static properties** (no execution):

* the rewritten plan's inferred shape equals the original's;
* ``canonical_fingerprint`` is stable when commutative operands are swapped
  (``A + B`` vs ``B + A`` must plan to the same canonical form);
* the estimator's sparsity annotation of every internal node is a sane
  bound: ``0 <= nnz <= cells``.

**Numeric backtesting** (small concrete instances):

* the *original* expression evaluated on the as-stated NumPy substrate is
  the reference value;
* both the original and the rewritten plan are executed on every LA-capable
  backend (numpy, systemml_like, morpheus) and compared against the
  reference with an operator-aware tolerance (conditioning-sensitive
  operators — inversion, determinants, matrix exponentials/powers,
  element-wise division — get a looser relative tolerance);
* the relational backend, which declares ``supports_la=False``, must
  *refuse* the plan with :class:`~repro.exceptions.ExecutionError`; a
  silently returned value is itself a violation.

A failed check is a :class:`Violation`; the full per-expression outcome —
violations plus the timing/size observations the
:class:`~repro.cost.LearnedEstimator` feeds on — is an :class:`OracleReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import Engine
from repro.backends import (
    MorpheusBackend,
    NumpyBackend,
    RelationalEngine,
    SystemMLLikeBackend,
)
from repro.backends.base import to_dense
from repro.constraints.views import LAView
from repro.cost import resolve_estimator
from repro.cost.model import annotate_expression
from repro.core.result import RewriteResult
from repro.data.catalog import Catalog
from repro.exceptions import ExecutionError, ShapeError, UnknownMatrixError
from repro.lang import matrix_expr as mx
from repro.lang.shapes import shape_of

#: Operators whose results are sensitive to conditioning / cancellation;
#: expressions containing any of them are compared with looser tolerances.
RISKY_OPS = frozenset({"inv_m", "det", "exp", "adj", "mat_pow", "div_m"})

#: (rtol, atol) used when the expression contains no risky operator.
STRICT_TOLERANCE = (1e-5, 1e-8)
#: (rtol, atol) used when it does.
LOOSE_TOLERANCE = (2e-3, 1e-6)

#: LA-capable substrates the backtest executes on; the reference value is
#: always the as-stated evaluation on the first of these.
LA_BACKENDS: Tuple[str, ...] = ("numpy", "systemml_like", "morpheus")


def expression_ops(expr: mx.Expr) -> frozenset:
    """The set of operator names appearing anywhere in ``expr``."""
    ops = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        ops.add(node.op)
        stack.extend(node.children)
    return frozenset(ops)


def tolerance_for(expr: mx.Expr) -> Tuple[float, float]:
    """(rtol, atol) for numeric comparison, operator-aware."""
    if expression_ops(expr) & RISKY_OPS:
        return LOOSE_TOLERANCE
    return STRICT_TOLERANCE


@dataclass(frozen=True)
class Violation:
    """One failed equivalence check.

    ``kind`` is one of ``shape`` / ``fingerprint`` / ``sparsity`` /
    ``numeric`` / ``backend``; ``detail`` is a human-readable explanation
    carrying the backend name and the observed discrepancy.
    """

    kind: str
    detail: str

    def to_json(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}

    @classmethod
    def from_json(cls, payload: dict) -> "Violation":
        return cls(kind=str(payload["kind"]), detail=str(payload["detail"]))


@dataclass
class NnzObservation:
    """Predicted vs. actual non-zero count of one internal node."""

    relation: str
    predicted: float
    actual: float


@dataclass
class OracleReport:
    """Everything the oracle learned about one expression."""

    expr: mx.Expr
    result: Optional[RewriteResult] = None
    violations: List[Violation] = field(default_factory=list)
    #: ``backend name -> execute seconds`` for the rewritten plan.
    timings: Dict[str, float] = field(default_factory=dict)
    #: ``backend name -> estimated plan cost`` (γ of the executed plan).
    costs: Dict[str, float] = field(default_factory=dict)
    nnz_observations: List[NnzObservation] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None


def _commute_once(expr: mx.Expr) -> Optional[mx.Expr]:
    """``expr`` with the operands of the *first* commutative node swapped.

    Returns ``None`` when the tree contains no commutative node.  Swapping a
    single node suffices: canonical fingerprints sort commutative child
    digests recursively, so one swap anywhere exercises the invariant.
    """

    def rebuild(node: mx.Expr) -> Tuple[mx.Expr, bool]:
        if node.op in mx.Expr.COMMUTATIVE_OPS:
            left, right = node.children
            return type(node)(right, left), True
        for index, child in enumerate(node.children):
            swapped, done = rebuild(child)
            if done:
                children = list(node.children)
                children[index] = swapped
                return rebuild_node(node, tuple(children)), True
        return node, False

    swapped, done = rebuild(expr)
    return swapped if done else None


def rebuild_node(node: mx.Expr, children: Tuple[mx.Expr, ...]) -> mx.Expr:
    """A structurally identical node with ``children`` substituted in.

    Payload-carrying nodes (``MatPow``) keep their payload; leaves are
    returned unchanged.  Shared with the shrinker.
    """
    if not node.children:
        return node
    if isinstance(node, mx.MatPow):
        return mx.MatPow(children[0], node.exponent)
    cls = type(node)
    if node.arity == 1:
        return cls(children[0])
    return cls(children[0], children[1])


class DifferentialOracle:
    """Plans expressions through the Engine and cross-checks equivalence."""

    def __init__(
        self,
        catalog: Catalog,
        views: Sequence[LAView] = (),
        estimator_name: str = "mnc",
    ):
        self.catalog = catalog
        self.views = list(views)
        self.estimator_name = estimator_name
        self.estimator = resolve_estimator(estimator_name)
        self.engine = Engine(catalog, views=self.views)
        self.backends = {
            "numpy": NumpyBackend(catalog),
            "systemml_like": SystemMLLikeBackend(catalog),
            "morpheus": MorpheusBackend(catalog),
        }
        self.relational = RelationalEngine(catalog)

    # ------------------------------------------------------------------ checks
    def _check_shape(self, report: OracleReport) -> None:
        result = report.result
        try:
            original_shape = shape_of(result.original, self.catalog)
        except (ShapeError, UnknownMatrixError) as exc:
            report.violations.append(
                Violation("shape", f"original expression has no inferable shape: {exc}")
            )
            return
        try:
            best_shape = shape_of(result.best, self.catalog)
        except (ShapeError, UnknownMatrixError) as exc:
            report.violations.append(
                Violation("shape", f"rewritten plan has no inferable shape: {exc}")
            )
            return
        if best_shape != original_shape:
            report.violations.append(
                Violation(
                    "shape",
                    f"rewritten plan has shape {best_shape} but the original "
                    f"has {original_shape}: {result.best.to_string()}",
                )
            )

    def _check_commuted_fingerprint(self, report: OracleReport) -> None:
        commuted = _commute_once(report.expr)
        if commuted is None:
            return
        if commuted.canonical_fingerprint() != report.expr.canonical_fingerprint():
            report.violations.append(
                Violation(
                    "fingerprint",
                    "canonical_fingerprint changed when commutative operands "
                    f"were swapped: {report.expr.to_string()}",
                )
            )

    def _check_sparsity(self, report: OracleReport) -> None:
        try:
            annotations = annotate_expression(report.result.best, self.catalog, self.estimator)
        except (ShapeError, UnknownMatrixError) as exc:
            report.violations.append(
                Violation("sparsity", f"rewritten plan could not be annotated: {exc}")
            )
            return
        for node, info in annotations.items():
            if not node.children:
                continue
            if not np.isfinite(info.nnz) or info.nnz < 0:
                report.violations.append(
                    Violation(
                        "sparsity",
                        f"estimator produced nnz={info.nnz!r} for {node.op} "
                        f"node in {report.result.best.to_string()}",
                    )
                )
            elif info.shape is not None and info.nnz > info.cells + 1e-6:
                report.violations.append(
                    Violation(
                        "sparsity",
                        f"estimated nnz {info.nnz} exceeds the {info.shape} "
                        f"cell count for {node.op} node",
                    )
                )

    def _check_numeric(self, report: OracleReport) -> None:
        result = report.result
        rtol, atol = tolerance_for(result.original)
        try:
            reference_eval = self.backends[LA_BACKENDS[0]].execute_plan(
                result, use_rewritten=False
            )
        except ExecutionError as exc:
            report.error = f"reference evaluation failed: {exc}"
            return
        reference = to_dense(reference_eval.value)
        if not np.all(np.isfinite(reference)):
            report.error = "reference evaluation is not finite; expression skipped"
            return

        for name in LA_BACKENDS:
            backend = self.backends[name]
            for use_rewritten, label in ((False, "original"), (True, "rewritten")):
                if name == LA_BACKENDS[0] and not use_rewritten:
                    evaluation = reference_eval
                else:
                    try:
                        evaluation = backend.execute_plan(result, use_rewritten=use_rewritten)
                    except ExecutionError as exc:
                        report.violations.append(
                            Violation(
                                "backend",
                                f"{name} failed to execute the {label} plan: {exc}",
                            )
                        )
                        continue
                value = to_dense(evaluation.value)
                if value.shape != reference.shape:
                    report.violations.append(
                        Violation(
                            "numeric",
                            f"{name}/{label} returned shape {value.shape}, "
                            f"reference is {reference.shape}",
                        )
                    )
                    continue
                if not np.allclose(value, reference, rtol=rtol, atol=atol):
                    delta = float(np.max(np.abs(value - reference)))
                    report.violations.append(
                        Violation(
                            "numeric",
                            f"{name}/{label} diverges from the reference by "
                            f"max |delta|={delta:.3e} (rtol={rtol}, atol={atol}): "
                            f"{(result.best if use_rewritten else result.original).to_string()}",
                        )
                    )
                    continue
                if use_rewritten:
                    report.timings[name] = evaluation.seconds

        # The relational engine declares supports_la=False: it must refuse.
        try:
            self.relational.execute_plan(result, use_rewritten=True)
        except ExecutionError:
            pass
        else:
            report.violations.append(
                Violation(
                    "backend",
                    "relational backend silently executed an LA plan it "
                    "declares unsupported",
                )
            )

    def _collect_nnz_observations(self, report: OracleReport) -> None:
        """Predicted-vs-actual nnz per internal node (LearnedEstimator food)."""
        try:
            annotations = annotate_expression(report.result.best, self.catalog, self.estimator)
        except (ShapeError, UnknownMatrixError):
            return
        numpy_backend = self.backends[LA_BACKENDS[0]]
        for node, info in annotations.items():
            if not node.children:
                continue
            try:
                value = to_dense(numpy_backend.evaluate(node))
            except ExecutionError:
                continue
            if not np.all(np.isfinite(value)):
                continue
            actual = float(np.count_nonzero(np.abs(value) > 1e-12))
            report.nnz_observations.append(
                NnzObservation(relation=node.op, predicted=float(info.nnz), actual=actual)
            )

    # ------------------------------------------------------------------ entry
    def check(self, expr: mx.Expr, collect_observations: bool = False) -> OracleReport:
        """Plan ``expr`` and run every equivalence check against the plan."""
        report = OracleReport(expr=expr)
        try:
            report.result = self.engine.rewrite(expr)
        except Exception as exc:  # planner crash on a valid expression IS a finding
            report.violations.append(
                Violation("planner", f"planner raised {type(exc).__name__}: {exc}")
            )
            return report
        self._check_shape(report)
        self._check_commuted_fingerprint(report)
        self._check_sparsity(report)
        self._check_numeric(report)
        if collect_observations and not report.violations:
            self._collect_nnz_observations(report)
        return report


__all__ = [
    "LA_BACKENDS",
    "LOOSE_TOLERANCE",
    "RISKY_OPS",
    "STRICT_TOLERANCE",
    "DifferentialOracle",
    "NnzObservation",
    "OracleReport",
    "Violation",
    "expression_ops",
    "rebuild_node",
    "tolerance_for",
]
