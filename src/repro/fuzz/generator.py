"""Seeded random generation of synthetic catalogs, LA expressions and views.

Everything here is a pure function of a seed: :func:`generate_catalog`
builds the same catalog for the same :class:`CatalogSpec`, and
:class:`ExpressionGenerator` draws the same expression stream for the same
``numpy`` generator state.  That determinism is what makes a fuzz failure a
*repro*: the corpus (:mod:`repro.fuzz.corpus`) persists only the spec and
the per-case seed, and replay regenerates byte-identical inputs.

The grammar is deliberately the grammar the planner claims to handle —
the operator set of the 57 benchkit pipelines — restricted where the
*numeric* oracle would otherwise drown in false positives:

* inversion / determinant / matrix exponential / powers are applied only to
  expressions built by :meth:`ExpressionGenerator.gen_invertible` (diagonal-
  dominant square leaves composed under transpose, products, sums and
  positive scalings — operations that preserve invertibility and keep the
  condition number small at these sizes);
* element-wise division draws its denominator from the ``P*`` matrices,
  whose entries are bounded away from zero, or from a positive scalar
  constant — the backends define ``x/0 = 0``, and rewritten plans are free
  to reassociate around those cells, so a fuzzer that divides by arbitrary
  expressions reports tolerance noise instead of planner bugs;
* variance/min/max aggregates and the (non-unique) QR/LU/Cholesky factor
  accessors are excluded: their values are either not uniquely determined
  by the input (factor sign conventions) or undefined on degenerate slices
  (``var`` with one sample).

Shapes are drawn from a small axis pool (``spec.dims`` plus the vector
axis 1) and every ``(rows, cols)`` pair over the pool is backed by at least
one dense and one positive matrix, so shape-directed generation never dead
ends: any requested shape has a leaf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.constraints.views import LAView
from repro.data.catalog import Catalog
from repro.lang import matrix_expr as mx

Shape = Tuple[int, int]


@dataclass(frozen=True)
class CatalogSpec:
    """The deterministic recipe for one synthetic catalog.

    The spec — not the catalog — is what the corpus persists: regenerating
    from an equal spec yields an identical catalog (same names, shapes and
    values), so a minimized failing expression stays reproducible.
    """

    seed: int = 0
    dims: Tuple[int, ...] = (2, 3, 5)
    sparse_density: float = 0.3

    def __post_init__(self):
        if not self.dims or any(d < 2 for d in self.dims):
            raise ValueError(f"CatalogSpec dims must all be >= 2, got {self.dims!r}")

    def to_json(self) -> dict:
        return {
            "seed": int(self.seed),
            "dims": [int(d) for d in self.dims],
            "sparse_density": float(self.sparse_density),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CatalogSpec":
        return cls(
            seed=int(payload["seed"]),
            dims=tuple(int(d) for d in payload["dims"]),
            sparse_density=float(payload.get("sparse_density", 0.3)),
        )


@dataclass
class CatalogInventory:
    """What the generator knows about a synthetic catalog's contents."""

    spec: CatalogSpec
    #: Every materialized matrix name, keyed by shape.
    by_shape: Dict[Shape, List[str]] = field(default_factory=dict)
    #: Names whose entries are bounded away from zero (safe ElemDiv denominators).
    positive_by_shape: Dict[Shape, List[str]] = field(default_factory=dict)
    #: Diagonally dominant square matrices, keyed by dimension.
    invertible_by_dim: Dict[int, List[str]] = field(default_factory=dict)
    scalars: List[str] = field(default_factory=list)

    @property
    def shapes(self) -> List[Shape]:
        return sorted(self.by_shape)

    @property
    def axes(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.spec.dims) | {1}))


def generate_catalog(spec: CatalogSpec) -> Tuple[Catalog, CatalogInventory]:
    """Build the synthetic catalog described by ``spec`` (deterministic).

    For every ``(rows, cols)`` pair over the axis pool (``spec.dims`` plus
    the vector axis 1, excluding the scalar-shaped 1x1):

    * ``D{r}x{c}`` — dense, entries uniform in [0, 1);
    * ``P{r}x{c}`` — dense, entries uniform in [0.5, 1.5) (never zero);

    plus, per square dimension ``n`` in ``spec.dims``, a diagonally dominant
    ``Q{n}``, a sparse ``S{r}x{c}`` for the two largest rectangular shapes,
    and the two scalars ``s1`` / ``s2``.
    """
    rng = np.random.default_rng(spec.seed)
    catalog = Catalog()
    inventory = CatalogInventory(spec=spec)
    axes = inventory.axes

    def remember(store: Dict, key, name: str) -> None:
        store.setdefault(key, []).append(name)

    for r in axes:
        for c in axes:
            if (r, c) == (1, 1):
                continue
            dense_name = f"D{r}x{c}"
            catalog.register_dense(dense_name, rng.random((r, c)))
            remember(inventory.by_shape, (r, c), dense_name)
            positive_name = f"P{r}x{c}"
            catalog.register_dense(positive_name, 0.5 + rng.random((r, c)))
            remember(inventory.by_shape, (r, c), positive_name)
            remember(inventory.positive_by_shape, (r, c), positive_name)

    for n in sorted(set(spec.dims)):
        name = f"Q{n}"
        catalog.register_dense(name, rng.random((n, n)) + n * np.eye(n))
        remember(inventory.by_shape, (n, n), name)
        remember(inventory.invertible_by_dim, n, name)

    rect = sorted(
        ((r, c) for r in spec.dims for c in spec.dims if r != c),
        key=lambda shape: shape[0] * shape[1],
        reverse=True,
    )
    for r, c in rect[:2]:
        name = f"S{r}x{c}"
        catalog.register_sparse(
            name,
            sparse.random(
                r, c, density=spec.sparse_density,
                random_state=np.random.default_rng(rng.integers(0, 2**31)),
            ),
        )
        remember(inventory.by_shape, (r, c), name)

    for scalar_name in ("s1", "s2"):
        catalog.register_scalar(scalar_name, float(0.5 + 2.5 * rng.random()))
        inventory.scalars.append(scalar_name)

    return catalog, inventory


class ExpressionGenerator:
    """Shape-directed random construction of LA expressions over a catalog.

    ``generate()`` draws one expression; every recursive step either emits a
    leaf of the required shape or picks a weighted operator whose operand
    shapes are again drawn from the axis pool, so the result is always
    conformable (``shape_of`` never raises on generated expressions — a
    property the smoke tests assert).
    """

    def __init__(
        self,
        inventory: CatalogInventory,
        rng: np.random.Generator,
        max_depth: int = 5,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.inventory = inventory
        self.rng = rng
        self.max_depth = max_depth

    # ------------------------------------------------------------------ helpers
    def _choice(self, items: Sequence):
        return items[int(self.rng.integers(0, len(items)))]

    def _random_shape(self) -> Shape:
        return self._choice(self.inventory.shapes)

    def _splits(self, total: int) -> List[Tuple[int, int]]:
        axes = set(self.inventory.axes)
        return [(a, total - a) for a in sorted(axes) if 0 < a < total and (total - a) in axes]

    # ------------------------------------------------------------------ leaves
    def leaf(self, shape: Shape) -> mx.Expr:
        if shape == (1, 1):
            return self.scalar_leaf()
        names = self.inventory.by_shape.get(shape)
        if names:
            return mx.MatrixRef(self._choice(names))
        if shape[0] == shape[1]:
            return mx.Identity(shape[0])
        raise ValueError(f"no catalog matrix of shape {shape!r} to draw a leaf from")

    def scalar_leaf(self) -> mx.Expr:
        if self.inventory.scalars and self.rng.random() < 0.5:
            return mx.ScalarRef(self._choice(self.inventory.scalars))
        return mx.ScalarConst(round(float(0.5 + 2.5 * self.rng.random()), 3))

    # ------------------------------------------------------------------ invertible squares
    def gen_invertible(self, n: int, depth: int = 2) -> mx.Expr:
        """A square expression that is invertible and well conditioned.

        Built from the diagonally dominant ``Q{n}`` leaves under operations
        preserving both properties at these sizes: transpose, products,
        sums of (positively scaled) dominant leaves.
        """
        leaves = self.inventory.invertible_by_dim.get(n)
        if not leaves:
            return mx.Identity(n)

        def atomic() -> mx.Expr:
            base = mx.MatrixRef(self._choice(leaves))
            if self.rng.random() < 0.3:
                return mx.ScalarMul(mx.ScalarConst(round(float(0.5 + self.rng.random()), 3)), base)
            return base

        if depth <= 0:
            return atomic()
        roll = self.rng.random()
        if roll < 0.35:
            return atomic()
        if roll < 0.55:
            return mx.Transpose(self.gen_invertible(n, depth - 1))
        if roll < 0.8:
            return mx.MatMul(self.gen_invertible(n, depth - 1), self.gen_invertible(n, depth - 1))
        return mx.Add(atomic(), atomic())

    # ------------------------------------------------------------------ matrices
    def gen_matrix(self, shape: Shape, depth: int) -> mx.Expr:
        """A random expression of exactly ``shape``."""
        r, c = shape
        if depth <= 0 or shape == (1, 1):
            return self.leaf(shape)
        axes = self.inventory.axes
        candidates: List[Tuple[float, object]] = []

        def add(weight: float, build) -> None:
            candidates.append((weight, build))

        add(1.5, lambda: self.leaf(shape))
        add(2.0, lambda: mx.Transpose(self.gen_matrix((c, r), depth - 1)))

        def matmul() -> mx.Expr:
            k = self._choice(axes)
            return mx.MatMul(self.gen_matrix((r, k), depth - 1), self.gen_matrix((k, c), depth - 1))

        add(2.5, matmul)
        for op in (mx.Add, mx.Sub, mx.Hadamard):
            add(
                0.8,
                lambda op=op: op(self.gen_matrix(shape, depth - 1), self.gen_matrix(shape, depth - 1)),
            )
        add(1.0, lambda: mx.ScalarMul(self.scalar_leaf(), self.gen_matrix(shape, depth - 1)))
        add(0.5, lambda: mx.Rev(self.gen_matrix(shape, depth - 1)))

        positive = self.inventory.positive_by_shape.get(shape)
        if positive:

            def elem_div() -> mx.Expr:
                if self.rng.random() < 0.3:
                    denominator: mx.Expr = mx.ScalarConst(
                        round(float(0.5 + 1.5 * self.rng.random()), 3)
                    )
                else:
                    denominator = mx.MatrixRef(self._choice(positive))
                return mx.ElemDiv(self.gen_matrix(shape, depth - 1), denominator)

            add(0.8, elem_div)

        if c == 1:
            for op in (mx.RowSums, mx.RowMeans):
                add(
                    0.8,
                    lambda op=op: op(self.gen_matrix((r, self._choice(axes)), depth - 1)),
                )
            if r in self.inventory.invertible_by_dim or (r, r) in self.inventory.by_shape:
                add(0.4, lambda: mx.Diag(self.gen_matrix((r, r), depth - 1)))
        if r == 1:
            for op in (mx.ColSums, mx.ColMeans):
                add(
                    0.8,
                    lambda op=op: op(self.gen_matrix((self._choice(axes), c), depth - 1)),
                )

        if r == c and r in self.inventory.invertible_by_dim:
            add(1.0, lambda: mx.Inverse(self.gen_invertible(r)))
            add(0.4, lambda: mx.MatExp(self.gen_invertible(r, depth=1)))
            add(
                0.6,
                lambda: mx.MatPow(self.gen_invertible(r, depth=1), int(self.rng.integers(0, 4))),
            )
            add(0.4, lambda: mx.Diag(self.gen_matrix((r, 1), depth - 1)))

        col_splits = self._splits(c)
        if col_splits and r != 1:

            def cbind() -> mx.Expr:
                left_cols, right_cols = self._choice(col_splits)
                return mx.CBind(
                    self.gen_matrix((r, left_cols), depth - 1),
                    self.gen_matrix((r, right_cols), depth - 1),
                )

            add(0.5, cbind)
        row_splits = self._splits(r)
        if row_splits and c != 1:

            def rbind() -> mx.Expr:
                top_rows, bottom_rows = self._choice(row_splits)
                return mx.RBind(
                    self.gen_matrix((top_rows, c), depth - 1),
                    self.gen_matrix((bottom_rows, c), depth - 1),
                )

            add(0.5, rbind)

        weights = np.asarray([weight for weight, _ in candidates], dtype=np.float64)
        index = int(self.rng.choice(len(candidates), p=weights / weights.sum()))
        return candidates[index][1]()

    # ------------------------------------------------------------------ scalars
    def gen_scalar(self, depth: int) -> mx.Expr:
        """A random scalar-valued expression (sum / trace / det roots)."""
        roll = self.rng.random()
        square_dims = sorted(self.inventory.invertible_by_dim)
        if square_dims and roll < 0.3:
            return mx.Trace(self.gen_matrix((n := self._choice(square_dims), n), depth - 1))
        if square_dims and roll < 0.45:
            return mx.Det(self.gen_invertible(self._choice(square_dims)))
        return mx.SumAll(self.gen_matrix(self._random_shape(), depth - 1))

    # ------------------------------------------------------------------ entry points
    def generate(self) -> mx.Expr:
        """Draw one random LA expression (matrix- or scalar-valued)."""
        depth = int(self.rng.integers(2, self.max_depth + 1))
        if self.rng.random() < 0.18:
            return self.gen_scalar(depth)
        return self.gen_matrix(self._random_shape(), depth)

    def generate_views(self, count: int, name_prefix: str = "VF") -> List[LAView]:
        """Random materializable views drawn from the same grammar.

        View definitions only reference catalog matrices (never other
        views), so they can be materialized in any order.
        """
        views: List[LAView] = []
        for index in range(count):
            depth = int(self.rng.integers(1, 4))
            views.append(
                LAView(f"{name_prefix}{index}", self.gen_matrix(self._random_shape(), depth))
            )
        return views


def spawn_rng(master_seed: int, *key: int) -> np.random.Generator:
    """An independent, reproducible generator for one (seed, case) lane."""
    return np.random.default_rng(np.random.SeedSequence(entropy=master_seed, spawn_key=key))


__all__ = [
    "CatalogInventory",
    "CatalogSpec",
    "ExpressionGenerator",
    "generate_catalog",
    "spawn_rng",
]
