"""Verified-equivalence fuzzing for the rewrite engine.

The standing correctness harness every planner/chase change runs against:

* :mod:`repro.fuzz.generator` — seeded random synthetic catalogs, LA
  expressions and view sets drawn from one grammar;
* :mod:`repro.fuzz.oracle` — a differential oracle planning each expression
  through :class:`repro.api.Engine` and checking equivalence statically
  (shape, sparsity bounds, canonical-fingerprint stability) and numerically
  (cross-backend backtesting with operator-aware tolerances);
* :mod:`repro.fuzz.shrinker` — greedy minimization of failing expressions
  to locally minimal repros;
* :mod:`repro.fuzz.corpus` — the committed counterexample corpus under
  ``tests/corpus/``, replayed as ordinary pytest cases;
* :mod:`repro.fuzz.runner` — the fixed-budget sweep behind
  ``python -m repro.fuzz`` and the CI fuzz job.

Deliberately *not* re-exported from :mod:`repro`: this is test
infrastructure, not user API.  See ``docs/testing.md``.
"""

from repro.fuzz.corpus import CorpusCase, load_cases, save_case
from repro.fuzz.deltas import (
    DeltaCase,
    DeltaSequenceGenerator,
    check_delta_case,
    load_delta_cases,
    run_delta_fuzz,
    save_delta_case,
)
from repro.fuzz.generator import (
    CatalogInventory,
    CatalogSpec,
    ExpressionGenerator,
    generate_catalog,
    spawn_rng,
)
from repro.fuzz.oracle import (
    DifferentialOracle,
    NnzObservation,
    OracleReport,
    Violation,
    tolerance_for,
)
from repro.fuzz.runner import FuzzConfig, FuzzOutcome, run_fuzz
from repro.fuzz.shrinker import expr_size, shrink

__all__ = [
    "CatalogInventory",
    "CatalogSpec",
    "CorpusCase",
    "DeltaCase",
    "DeltaSequenceGenerator",
    "DifferentialOracle",
    "ExpressionGenerator",
    "FuzzConfig",
    "FuzzOutcome",
    "NnzObservation",
    "OracleReport",
    "Violation",
    "check_delta_case",
    "expr_size",
    "generate_catalog",
    "load_cases",
    "load_delta_cases",
    "run_delta_fuzz",
    "run_fuzz",
    "save_case",
    "save_delta_case",
    "shrink",
    "spawn_rng",
    "tolerance_for",
]
