"""Delta-sequence fuzzing: random catalog mutation chains with an oracle.

Selective revalidation keeps a cached plan across a catalog delta whenever
the delta misses the plan's footprint — a claim with a sharp, testable
statement: **a plan served from a delta-updated workspace must be
byte-identical to the plan a freshly built engine produces at the same
catalog state**, whether it was kept warm, re-keyed, or replanned.

:class:`DeltaSequenceGenerator` draws seeded random mutation chains
(re-stats, metadata-only adds and their drops, structural-type updates,
view adds/drops) that are valid by construction — it applies each candidate
op to a scratch copy of the evolving state before emitting it — together
with a set of probe expressions over the base catalog.
:func:`check_delta_case` is the oracle: it warms one long-lived engine,
applies the chain delta by delta, and after every step compares each
probe's plan (structure, fingerprint, cost, used views) against a cold
engine built from scratch and fast-forwarded through the same prefix.

Cases serialize to the same JSON wire formats the gateway uses
(:meth:`repro.catalog.delta.CatalogDelta.to_json`,
:func:`repro.api.schema.expr_to_json`), so a failing chain is committed
under ``tests/corpus/deltas/`` and replayed in tier-1 verbatim — stable
against later generator drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple

import numpy as np

from repro.api.engine import Engine
from repro.api.schema import expr_from_json, expr_to_json
from repro.api.workspace import WorkspaceRegistry
from repro.catalog.delta import (
    AddRelation,
    AddView,
    CatalogDelta,
    DeltaOp,
    DropRelation,
    DropView,
    ReStat,
    UpdateConstraint,
)
from repro.data.matrix import MatrixType
from repro.exceptions import CatalogError, ConfigError
from repro.lang import matrix_expr as mx

from repro.fuzz.generator import CatalogSpec, ExpressionGenerator, generate_catalog, spawn_rng

DELTA_CORPUS_FORMAT = 1

#: The workspace name every delta-fuzz engine registers its catalog under.
WORKSPACE = "fuzz"


@dataclass
class DeltaCase:
    """One mutation chain + probe set, reproducible from the stored docs."""

    case_id: str
    catalog_spec: CatalogSpec
    #: Wire-format delta documents, applied in order.
    deltas: Tuple[dict, ...] = ()
    #: Wire-format probe expressions, planned after every delta.
    probes: Tuple[dict, ...] = ()
    seed: int = 0
    notes: str = ""

    def to_json(self) -> dict:
        return {
            "format": DELTA_CORPUS_FORMAT,
            "case_id": self.case_id,
            "catalog_spec": self.catalog_spec.to_json(),
            "deltas": list(self.deltas),
            "probes": list(self.probes),
            "seed": int(self.seed),
            "notes": self.notes,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "DeltaCase":
        fmt = int(payload.get("format", 0))
        if fmt != DELTA_CORPUS_FORMAT:
            raise ValueError(
                f"unsupported delta-corpus format {fmt} (expected {DELTA_CORPUS_FORMAT})"
            )
        return cls(
            case_id=str(payload["case_id"]),
            catalog_spec=CatalogSpec.from_json(payload["catalog_spec"]),
            deltas=tuple(payload.get("deltas", [])),
            probes=tuple(payload.get("probes", [])),
            seed=int(payload.get("seed", 0)),
            notes=str(payload.get("notes", "")),
        )


def save_delta_case(directory: Path, case: DeltaCase) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.case_id}.json"
    path.write_text(json.dumps(case.to_json(), indent=2, sort_keys=True) + "\n")
    return path


def load_delta_cases(directory: Path) -> List[DeltaCase]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        DeltaCase.from_json(json.loads(path.read_text()))
        for path in sorted(directory.glob("*.json"))
    ]


class DeltaSequenceGenerator:
    """Seeded random generation of valid catalog mutation chains.

    Validity by construction: every candidate op is applied to a scratch
    catalog (a regenerated copy of the spec's catalog) and the evolving
    view tuple before being emitted, so replaying the chain on a fresh
    engine can never fail validation mid-sequence.  Base matrices are never
    dropped (probes must stay plannable at every state); drops target only
    relations and views a previous step added.
    """

    def __init__(self, spec: CatalogSpec, seed: int = 0):
        self.spec = spec
        self.seed = int(seed)
        self.rng = spawn_rng(spec.seed, 7001, self.seed)
        # Scratch state the generator mutates to stay valid.
        self._catalog, self._inventory = generate_catalog(spec)
        self._views: Tuple = ()
        self._added: List[str] = []
        self._view_names: List[str] = []
        self._counter = 0
        self._exprs = ExpressionGenerator(self._inventory, self.rng, max_depth=4)

    # ------------------------------------------------------------------ ops
    def _choice(self, items):
        return items[int(self.rng.integers(0, len(items)))]

    def _base_names(self) -> List[str]:
        names = []
        for bucket in self._inventory.by_shape.values():
            names.extend(bucket)
        return sorted(set(names))

    def _draw_op(self) -> DeltaOp:
        roll = float(self.rng.random())
        if roll < 0.40:
            name = self._choice(self._base_names() + self._added)
            meta = self._catalog.meta(name)
            bound = max(1, meta.rows * meta.cols)
            return ReStat(name=name, nnz=int(self.rng.integers(0, bound + 1)))
        if roll < 0.55:
            self._counter += 1
            axes = self._inventory.axes
            rows = int(self._choice(axes)) * 2
            cols = int(self._choice(axes)) * 2
            return AddRelation(
                name=f"F{self._counter}",
                rows=rows,
                cols=cols,
                nnz=int(self.rng.integers(0, rows * cols + 1)),
            )
        if roll < 0.65 and self._added:
            return DropRelation(name=self._choice(self._added))
        if roll < 0.78:
            name = self._choice(self._base_names())
            return UpdateConstraint(
                name=name, matrix_type=self._choice(sorted(MatrixType.ALL))
            )
        if roll < 0.90 or not self._view_names:
            self._counter += 1
            view = self._exprs.generate_views(1, name_prefix=f"VD{self._counter}_")[0]
            return AddView(view)
        return DropView(name=self._choice(self._view_names))

    def _emit_op(self, forbidden: frozenset = frozenset()) -> DeltaOp:
        """Draw ops until one validates against the scratch state.

        ``forbidden`` holds the names earlier ops of the *same* delta
        document touch: a delta validates every op against the pre-state
        before applying any, so ops within one document must not depend on
        (or conflict with) each other.
        """
        for _ in range(16):
            op = self._draw_op()
            if op.touched() & forbidden:
                continue
            try:
                op.check(self._catalog, self._views)
            except (CatalogError, ConfigError):
                continue
            self._views = op.apply(self._catalog, self._views)
            if isinstance(op, AddRelation):
                self._added.append(op.name)
            elif isinstance(op, DropRelation):
                self._added.remove(op.name)
            elif isinstance(op, AddView):
                self._view_names.append(op.view.name)
            elif isinstance(op, DropView):
                self._view_names.remove(op.name)
            return op
        # Fallback: a ReStat on an untouched base name always validates.
        for name in self._base_names():
            if name not in forbidden:
                return ReStat(name=name, nnz=1)
        raise RuntimeError("delta generator exhausted every base relation")

    # ------------------------------------------------------------------ cases
    def generate_case(
        self, case_id: str, steps: int = 4, probes: int = 5, ops_per_delta: int = 2
    ) -> DeltaCase:
        """One chain of ``steps`` deltas (each 1..``ops_per_delta`` ops)
        plus ``probes`` random probe expressions over the base catalog."""
        probe_docs = tuple(
            expr_to_json(self._exprs.generate()) for _ in range(probes)
        )
        delta_docs = []
        for _ in range(steps):
            count = int(self.rng.integers(1, ops_per_delta + 1))
            ops = []
            touched: frozenset = frozenset()
            for _ in range(count):
                op = self._emit_op(forbidden=touched)
                ops.append(op)
                touched |= op.touched()
            delta_docs.append(CatalogDelta(tuple(ops)).to_json())
        return DeltaCase(
            case_id=case_id,
            catalog_spec=self.spec,
            deltas=tuple(delta_docs),
            probes=probe_docs,
            seed=self.seed,
        )


# ---------------------------------------------------------------------------
# Oracle
# ---------------------------------------------------------------------------

def _fresh_engine(spec: CatalogSpec) -> Engine:
    catalog, _ = generate_catalog(spec)
    registry = WorkspaceRegistry()
    registry.register(WORKSPACE, catalog=catalog)
    return Engine(workspaces=registry)


def _plan_signature(result) -> Tuple[str, str, float, Tuple[str, ...]]:
    """Everything a served plan's bytes are derived from."""
    return (
        result.best.to_string(),
        result.best.fingerprint(),
        float(result.best_cost),
        tuple(sorted(result.used_views)),
    )


def check_delta_case(case: DeltaCase) -> List[str]:
    """Run the byte-identity oracle over one chain; returns mismatches.

    The *live* engine applies deltas incrementally (plans surviving each
    delta come from the warm cache); the *reference* engine is rebuilt from
    the spec before every comparison and fast-forwarded through the same
    delta prefix, so every reference plan is a cold re-plan against the
    mutated catalog.  Any divergence — structure, fingerprint, cost or used
    views — is one returned mismatch string.
    """
    probes = [expr_from_json(doc) for doc in case.probes]
    deltas = [CatalogDelta.from_json(doc) for doc in case.deltas]
    failures: List[str] = []

    live = _fresh_engine(case.catalog_spec)
    for probe in probes:  # warm the live cache pre-mutation
        live.workspace(WORKSPACE).rewrite(probe)

    for step, delta in enumerate(deltas):
        live.apply_delta(WORKSPACE, delta)
        live_handle = live.workspace(WORKSPACE)
        live_plans = [live_handle.rewrite(probe) for probe in probes]

        reference = _fresh_engine(case.catalog_spec)
        for prior in deltas[: step + 1]:
            reference.apply_delta(WORKSPACE, prior)
        reference_handle = reference.workspace(WORKSPACE)

        for index, probe in enumerate(probes):
            live_sig = _plan_signature(live_plans[index])
            cold_sig = _plan_signature(reference_handle.rewrite(probe))
            if live_sig != cold_sig:
                served = "warm" if live_plans[index].cache_hit else "replanned"
                failures.append(
                    f"step {step} probe {index} ({served}): "
                    f"live {live_sig!r} != cold {cold_sig!r} "
                    f"after delta {delta.to_json()}"
                )
    return failures


def run_delta_fuzz(
    spec: CatalogSpec, cases: int = 5, steps: int = 4, probes: int = 5
) -> Tuple[List[DeltaCase], List[str]]:
    """Sweep ``cases`` seeded chains; returns (failing cases, mismatches)."""
    failing: List[DeltaCase] = []
    messages: List[str] = []
    for index in range(cases):
        generator = DeltaSequenceGenerator(spec, seed=index)
        case = generator.generate_case(
            f"delta-seed{spec.seed}-case{index}", steps=steps, probes=probes
        )
        mismatches = check_delta_case(case)
        if mismatches:
            failing.append(case)
            messages.extend(mismatches)
    return failing, messages


__all__ = [
    "DELTA_CORPUS_FORMAT",
    "WORKSPACE",
    "DeltaCase",
    "DeltaSequenceGenerator",
    "check_delta_case",
    "load_delta_cases",
    "run_delta_fuzz",
    "save_delta_case",
]
