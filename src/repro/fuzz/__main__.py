"""CLI entry point: ``python -m repro.fuzz --budget 300 --seed 20260808``.

Prints the JSON sweep summary on stdout and exits non-zero when any
equivalence violation was found; minimized counterexamples are written to
``--out`` in the corpus format (CI uploads that directory as an artifact).
Reproduce a CI failure locally by running the ``repro_command`` printed in
the summary and inspecting the saved cases, or copy a case file into
``tests/corpus/`` to make it a permanent regression test.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fuzz.runner import FuzzConfig, run_fuzz


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Fixed-budget differential fuzz sweep over random LA expressions.",
    )
    defaults = FuzzConfig()
    parser.add_argument("--budget", type=int, default=defaults.budget,
                        help="number of expressions to generate and check")
    parser.add_argument("--seed", type=int, default=defaults.seed,
                        help="master seed; the whole sweep is a function of it")
    parser.add_argument("--per-catalog", type=int, default=defaults.expressions_per_catalog,
                        help="expressions drawn per synthetic catalog")
    parser.add_argument("--max-depth", type=int, default=defaults.max_depth,
                        help="maximum expression depth")
    parser.add_argument("--estimator", default=defaults.estimator,
                        help="sparsity estimator name (naive | mnc | learned)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for minimized counterexample JSON files")
    parser.add_argument("--no-shrink", action="store_true",
                        help="persist raw counterexamples without minimizing")
    args = parser.parse_args(argv)

    outcome = run_fuzz(
        FuzzConfig(
            budget=args.budget,
            seed=args.seed,
            expressions_per_catalog=args.per_catalog,
            max_depth=args.max_depth,
            estimator=args.estimator,
            shrink=not args.no_shrink,
            out_dir=args.out,
        )
    )
    print(json.dumps(outcome.summary(), indent=2))
    return 1 if outcome.violations else 0


if __name__ == "__main__":
    sys.exit(main())
