"""The committed counterexample corpus: minimized failures become tests.

Every violation the fuzzer finds is shrunk and persisted as one JSON file
under ``tests/corpus/``.  The file stores the *recipe*, not the data — the
:class:`~repro.fuzz.generator.CatalogSpec` (seed + dims + density), the
view definitions, and the minimized expression via the same typed codec the
wire protocol uses (:func:`repro.api.schema.expr_to_json`) — so replay
regenerates the exact catalog and re-runs the oracle from scratch.

``tests/test_corpus_replay.py`` loads every case and replays it as an
ordinary pytest case in tier-1: a fixed planner bug can never silently
regress.  Cases for *known-open* bugs carry an ``xfail`` field (a short
issue reference); replay then asserts the failure still reproduces and
flips to an ordinary failure once the bug is fixed, prompting removal of
the marker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.api.schema import expr_from_json, expr_to_json
from repro.benchkit.harness import materialize_views
from repro.constraints.views import LAView
from repro.lang import matrix_expr as mx

from repro.fuzz.generator import CatalogSpec, generate_catalog
from repro.fuzz.oracle import DifferentialOracle, OracleReport, Violation

CORPUS_FORMAT = 1


@dataclass
class CorpusCase:
    """One minimized counterexample, reproducible from its recipe alone."""

    case_id: str
    expr: mx.Expr
    catalog_spec: CatalogSpec
    views: Tuple[LAView, ...] = ()
    seed: Optional[int] = None
    estimator: str = "mnc"
    #: The violations observed when the case was minted (documentation —
    #: replay re-derives the live ones).
    violations: Tuple[Violation, ...] = ()
    #: Issue reference for a known-open bug; replay xfails instead of failing.
    xfail: Optional[str] = None
    notes: str = ""

    def to_json(self) -> dict:
        return {
            "format": CORPUS_FORMAT,
            "case_id": self.case_id,
            "expr": expr_to_json(self.expr),
            "catalog_spec": self.catalog_spec.to_json(),
            "views": [
                {"name": view.name, "definition": expr_to_json(view.definition)}
                for view in self.views
            ],
            "seed": self.seed,
            "estimator": self.estimator,
            "violations": [violation.to_json() for violation in self.violations],
            "xfail": self.xfail,
            "notes": self.notes,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CorpusCase":
        fmt = int(payload.get("format", 0))
        if fmt != CORPUS_FORMAT:
            raise ValueError(f"unsupported corpus format {fmt} (expected {CORPUS_FORMAT})")
        return cls(
            case_id=str(payload["case_id"]),
            expr=expr_from_json(payload["expr"]),
            catalog_spec=CatalogSpec.from_json(payload["catalog_spec"]),
            views=tuple(
                LAView(str(view["name"]), expr_from_json(view["definition"]))
                for view in payload.get("views", [])
            ),
            seed=payload.get("seed"),
            estimator=str(payload.get("estimator", "mnc")),
            violations=tuple(
                Violation.from_json(item) for item in payload.get("violations", [])
            ),
            xfail=payload.get("xfail"),
            notes=str(payload.get("notes", "")),
        )

    def replay(self) -> OracleReport:
        """Regenerate the catalog from the spec and re-run every check."""
        catalog, _ = generate_catalog(self.catalog_spec)
        if self.views:
            materialize_views(list(self.views), catalog)
        oracle = DifferentialOracle(
            catalog, views=list(self.views), estimator_name=self.estimator
        )
        return oracle.check(self.expr)


def case_path(directory: Path, case: CorpusCase) -> Path:
    return Path(directory) / f"{case.case_id}.json"


def save_case(directory: Path, case: CorpusCase) -> Path:
    """Write one case as pretty-printed JSON (stable diffs under review)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = case_path(directory, case)
    path.write_text(json.dumps(case.to_json(), indent=2, sort_keys=True) + "\n")
    return path


def load_cases(directory: Path) -> List[CorpusCase]:
    """Every ``*.json`` case under ``directory``, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.json")):
        cases.append(CorpusCase.from_json(json.loads(path.read_text())))
    return cases


__all__ = ["CORPUS_FORMAT", "CorpusCase", "case_path", "load_cases", "save_case"]
