"""Frozen, validated configuration for the whole stack.

Since the :mod:`repro.api` consolidation these four dataclasses are the
*only* way options flow through the layers:

* :class:`PlannerConfig` — every knob of a
  :class:`~repro.planner.session.PlanSession` (rule-set toggles, saturation
  budgets, pruning, caching).  ``HadadOptimizer``'s historical keyword soup
  and mutable properties are a façade over exactly these fields.
* :class:`ServiceConfig` — the :class:`~repro.service.AnalyticsService`
  knobs: pool size, shared-result-cache capacity, batch fan-out, routing
  preference.
* :class:`GatewayConfig` — the :class:`~repro.server.AnalyticsGateway`
  knobs: bind address, admission bound, micro-batching window, backlog.
* :class:`EngineConfig` — the composition of the three, plus the named
  execution backends to register, consumed by :class:`repro.api.Engine`.

Every config is **frozen** (mutation raises) and **validated at
construction**: a bad value raises :class:`~repro.exceptions.ConfigError`
naming the field, the value received and the acceptable range — the
misconfiguration surfaces where it was written, not two layers down.

Configs are threaded through the stack *unchanged*, so caches can key on
them: :meth:`PlannerConfig.cache_key` is a stable, hashable tuple of every
plan-affecting field, and it is a component of the planner's rewrite-cache
key (mutating a legacy façade property therefore re-keys cached plans
instead of serving stale ones).

This module is import-neutral (stdlib + :mod:`repro.exceptions` only); the
planner, service and server layers all import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import ConfigError

#: The stock execution substrates, in the registration order of
#: :meth:`repro.backends.registry.BackendRegistry.with_defaults`.
DEFAULT_BACKENDS: Tuple[str, ...] = ("numpy", "systemml_like", "morpheus", "relational")


def _require_bool(config: str, name: str, value: Any) -> bool:
    if not isinstance(value, bool):
        raise ConfigError(
            f"{config}.{name} must be a bool, got {value!r} "
            f"(type {type(value).__name__})"
        )
    return value


def _require_int(
    config: str, name: str, value: Any, minimum: int, maximum: Optional[int] = None
) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(
            f"{config}.{name} must be an int, got {value!r} "
            f"(type {type(value).__name__})"
        )
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None else f"in [{minimum}, {maximum}]"
        raise ConfigError(f"{config}.{name} must be {bound}, got {value}")
    return value


def _require_float(config: str, name: str, value: Any, minimum: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(
            f"{config}.{name} must be a number, got {value!r} "
            f"(type {type(value).__name__})"
        )
    if value < minimum:
        raise ConfigError(f"{config}.{name} must be >= {minimum}, got {value}")
    return float(value)


def _require_str(config: str, name: str, value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise ConfigError(
            f"{config}.{name} must be a non-empty string, got {value!r}"
        )
    return value


def _normalized_matrix_items(
    config: str, value: Any
) -> Tuple[Tuple[str, Tuple[str, str, str]], ...]:
    """Coerce a ``{name: (S, K, R)}`` mapping (or item tuple) to sorted items."""
    if value is None:
        return ()
    items = value.items() if isinstance(value, Mapping) else value
    try:
        normalized = tuple(
            sorted((str(name), (str(s), str(k), str(r))) for name, (s, k, r) in items)
        )
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"{config}.normalized_matrices must map matrix names to (S, K, R) "
            f"factor-name triples, got {value!r}"
        ) from exc
    return normalized


@dataclass(frozen=True)
class PlannerConfig:
    """Every plan-affecting knob of a :class:`~repro.planner.PlanSession`.

    Defaults reproduce the historical ``HadadOptimizer()`` behaviour
    exactly, so ``PlannerConfig()`` plans byte-identically to the legacy
    path.
    """

    include_decompositions: bool = False
    include_systemml_rules: bool = True
    include_morpheus_rules: bool = False
    include_view_voi: bool = True
    max_rounds: int = 4
    max_atoms: int = 2_500
    max_classes: int = 1_200
    prune: bool = True
    reorder_matmul_chains: bool = True
    alternatives_limit: int = 6
    normalized_matrices: Tuple[Tuple[str, Tuple[str, str, str]], ...] = ()
    cache_size: int = 256
    enable_cache: bool = True
    use_constraint_index: bool = True
    tighten_thresholds: bool = True
    #: Worker processes for the parallel chase: independent constraint
    #: groups have their premise matching evaluated concurrently per
    #: saturation round.  ``1`` (the default) is the serial engine,
    #: byte-identical to previous releases; values > 1 must still extract
    #: identical plans (enforced by ``bench_saturation.py``'s acceptance).
    chase_workers: int = 1
    #: Registered sparsity-estimator name (``"naive"`` | ``"mnc"`` | custom);
    #: resolved through :func:`repro.cost.resolve_estimator` when the session
    #: is built without an explicit estimator object.  Membership is checked
    #: at resolution (this module stays import-neutral), so a mistyped name
    #: still fails at session/engine construction with the valid choices.
    estimator: str = "naive"
    #: Static verification of the compiled constraint program
    #: (:mod:`repro.analysis.verifier`) at session construction and on
    #: ``set_views``.  ``"off"`` (the default) skips it; ``"warn"`` emits a
    #: :class:`UserWarning` listing error-severity findings; ``"strict"``
    #: raises :class:`~repro.exceptions.ConstraintVerificationError` on them.
    #: Warning-tier findings (e.g. the deliberately non-weakly-acyclic LA
    #: theory) never block a session — use the CLI's ``--strict`` mode and
    #: the waiver file to audit those.  Verification never mutates the
    #: program, so plans are identical across all three modes.
    verify_constraints: str = "off"

    def __post_init__(self) -> None:
        name = type(self).__name__
        for flag in (
            "include_decompositions",
            "include_systemml_rules",
            "include_morpheus_rules",
            "include_view_voi",
            "prune",
            "reorder_matmul_chains",
            "enable_cache",
            "use_constraint_index",
            "tighten_thresholds",
        ):
            _require_bool(name, flag, getattr(self, flag))
        _require_int(name, "max_rounds", self.max_rounds, 1)
        _require_int(name, "max_atoms", self.max_atoms, 1)
        _require_int(name, "max_classes", self.max_classes, 1)
        _require_int(name, "alternatives_limit", self.alternatives_limit, 0)
        _require_int(name, "cache_size", self.cache_size, 1)
        _require_int(name, "chase_workers", self.chase_workers, 1)
        _require_str(name, "estimator", self.estimator)
        _require_str(name, "verify_constraints", self.verify_constraints)
        if self.verify_constraints not in ("off", "warn", "strict"):
            raise ConfigError(
                f"{name}.verify_constraints must be one of 'off', 'warn', "
                f"'strict', got {self.verify_constraints!r}"
            )
        object.__setattr__(
            self,
            "normalized_matrices",
            _normalized_matrix_items(name, self.normalized_matrices),
        )

    def cache_key(self) -> Tuple:
        """A stable, hashable tuple of every plan-affecting field.

        This is the options component of the planner's rewrite-cache key:
        two sessions (or one session before and after reconfiguration)
        share cached plans only when these tuples are equal.
        """
        return tuple(getattr(self, f.name) for f in fields(self))

    def session_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for the :class:`~repro.planner.PlanSession`
        constructor (the dict-shaped view of the normalized matrices)."""
        kwargs = {f.name: getattr(self, f.name) for f in fields(self)}
        kwargs["normalized_matrices"] = dict(self.normalized_matrices)
        return kwargs

    def with_options(self, **changes: Any) -> "PlannerConfig":
        """A validated copy with ``changes`` applied (configs are frozen)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the concurrent :class:`~repro.service.AnalyticsService`."""

    max_sessions: int = 8
    result_cache_size: int = 1024
    plan_workers: int = 8
    preferred_backend: str = "numpy"

    def __post_init__(self) -> None:
        name = type(self).__name__
        _require_int(name, "max_sessions", self.max_sessions, 1)
        _require_int(name, "result_cache_size", self.result_cache_size, 1)
        _require_int(name, "plan_workers", self.plan_workers, 1)
        _require_str(name, "preferred_backend", self.preferred_backend)

    def with_options(self, **changes: Any) -> "ServiceConfig":
        return replace(self, **changes)


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the asyncio :class:`~repro.server.AnalyticsGateway`."""

    host: str = "127.0.0.1"
    port: int = 0
    max_in_flight: int = 256
    #: Per-workspace admission bound (tenant quota): at most this many
    #: requests of one workspace may be in flight at once; the overflow is
    #: answered ``429`` even when the global bound still has room.  ``0``
    #: (the default) disables the per-tenant bound.
    workspace_max_in_flight: int = 0
    batch_window_seconds: float = 0.005
    max_batch: int = 128
    plan_workers: int = 8
    backlog: int = 2048
    #: Number of planner worker *processes* behind the gateway.  ``0`` (the
    #: default) keeps today's in-process path — planning on a thread pool
    #: inside the gateway process, byte-identical behaviour.  ``N > 0``
    #: shards workspaces across N spawned worker processes by consistent
    #: hashing (see :mod:`repro.server.workers`), each owning its own plan
    #: session pool and warm rewrite cache, supervised and respawned on
    #: crash.
    planner_workers: int = 0
    #: How many times a request lost to a worker crash is replayed against
    #: the respawned worker before it is failed back to the client (500).
    worker_retry_budget: int = 2
    #: Base of the supervisor's bounded exponential respawn backoff: the
    #: k-th consecutive crash of one worker slot waits
    #: ``worker_backoff_seconds * 2**(k-1)`` (capped internally) before
    #: respawning.
    worker_backoff_seconds: float = 0.05

    def __post_init__(self) -> None:
        name = type(self).__name__
        _require_str(name, "host", self.host)
        _require_int(name, "port", self.port, 0, 65_535)
        _require_int(name, "max_in_flight", self.max_in_flight, 1)
        _require_int(name, "workspace_max_in_flight", self.workspace_max_in_flight, 0)
        object.__setattr__(
            self,
            "batch_window_seconds",
            _require_float(name, "batch_window_seconds", self.batch_window_seconds, 0.0),
        )
        _require_int(name, "max_batch", self.max_batch, 1)
        _require_int(name, "plan_workers", self.plan_workers, 1)
        _require_int(name, "backlog", self.backlog, 1)
        _require_int(name, "planner_workers", self.planner_workers, 0)
        _require_int(name, "worker_retry_budget", self.worker_retry_budget, 0)
        object.__setattr__(
            self,
            "worker_backoff_seconds",
            _require_float(name, "worker_backoff_seconds", self.worker_backoff_seconds, 0.0),
        )

    def with_options(self, **changes: Any) -> "GatewayConfig":
        return replace(self, **changes)


def _coerce(config: str, name: str, value: Any, cls: type) -> Any:
    """Accept a sub-config instance or a plain mapping of its fields."""
    if isinstance(value, cls):
        return value
    if isinstance(value, Mapping):
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(value) - known)
        if unknown:
            raise ConfigError(
                f"{config}.{name} got unknown option(s) {unknown}; "
                f"valid {cls.__name__} fields are {sorted(known)}"
            )
        return cls(**value)
    raise ConfigError(
        f"{config}.{name} must be a {cls.__name__} (or a mapping of its "
        f"fields), got {value!r} (type {type(value).__name__})"
    )


@dataclass(frozen=True)
class EngineConfig:
    """The single configuration object a :class:`repro.api.Engine` consumes.

    Composes the per-layer configs and names the execution backends to
    register (each must be known to the engine's
    :class:`~repro.backends.registry.BackendRegistry`).  Sub-configs may be
    given as plain mappings and are validated on coercion::

        EngineConfig(planner={"max_rounds": 6}, service={"max_sessions": 2})
    """

    planner: PlannerConfig = field(default_factory=PlannerConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    backends: Tuple[str, ...] = DEFAULT_BACKENDS

    def __post_init__(self) -> None:
        name = type(self).__name__
        object.__setattr__(self, "planner", _coerce(name, "planner", self.planner, PlannerConfig))
        object.__setattr__(self, "service", _coerce(name, "service", self.service, ServiceConfig))
        object.__setattr__(self, "gateway", _coerce(name, "gateway", self.gateway, GatewayConfig))
        backends = self.backends
        if isinstance(backends, str) or not isinstance(backends, (tuple, list)):
            raise ConfigError(
                f"{name}.backends must be a tuple of backend names, got {backends!r}"
            )
        if not backends:
            raise ConfigError(f"{name}.backends must name at least one backend")
        for item in backends:
            _require_str(name, "backends[...]", item)
        if len(set(backends)) != len(backends):
            raise ConfigError(f"{name}.backends contains duplicates: {backends!r}")
        object.__setattr__(self, "backends", tuple(backends))

    def cache_key(self) -> Tuple:
        """The plan-affecting key: service/gateway knobs never change plans."""
        return self.planner.cache_key()

    def with_options(self, **changes: Any) -> "EngineConfig":
        return replace(self, **changes)


__all__ = [
    "DEFAULT_BACKENDS",
    "EngineConfig",
    "GatewayConfig",
    "PlannerConfig",
    "ServiceConfig",
]
