"""A SystemML-like backend: static rewrite rules + mmchain + execution.

SystemML is the one baseline in the paper that applies *some* algebraic
rewriting before execution: a fixed set of static aggregate simplification
rules (Appendix B) and an optimal multiplication-chain ordering.  What it
lacks is the deeper LA-property reasoning (and any view awareness), which is
why HADAD still finds rewritings it misses (Example 6.3, P1.14, P2.12).

This backend reproduces that behaviour: expressions are first normalised by
the bottom-up application of the same static rule set on the AST, then the
multiplication chains are re-associated optimally, and the result is executed
by the NumPy backend.
"""

from __future__ import annotations

from repro.backends.base import Value
from repro.backends.numpy_backend import NumpyBackend
from repro.core.matchain import optimize_matmul_chains
from repro.lang import matrix_expr as mx
from repro.lang.visitor import transform_bottom_up


def _static_rewrite(node: mx.Expr) -> mx.Expr:
    """One bottom-up application of SystemML's static simplification rules."""
    # sum(t(M)) -> sum(M), sum(rev(M)) -> sum(M)
    if isinstance(node, mx.SumAll) and isinstance(node.child, (mx.Transpose, mx.Rev)):
        return mx.SumAll(node.child.child)
    # sum(rowSums(M)) / sum(colSums(M)) -> sum(M)
    if isinstance(node, mx.SumAll) and isinstance(node.child, (mx.RowSums, mx.ColSums)):
        return mx.SumAll(node.child.child)
    # min(rowMins(M)) -> min(M), max(colMaxs(M)) -> max(M), ...
    if isinstance(node, mx.MinAll) and isinstance(node.child, (mx.RowMin, mx.ColMin)):
        return mx.MinAll(node.child.child)
    if isinstance(node, mx.MaxAll) and isinstance(node.child, (mx.RowMax, mx.ColMax)):
        return mx.MaxAll(node.child.child)
    # rowSums(t(M)) -> t(colSums(M)) and colSums(t(M)) -> t(rowSums(M))
    if isinstance(node, mx.RowSums) and isinstance(node.child, mx.Transpose):
        return mx.Transpose(mx.ColSums(node.child.child))
    if isinstance(node, mx.ColSums) and isinstance(node.child, mx.Transpose):
        return mx.Transpose(mx.RowSums(node.child.child))
    # trace(M N) -> sum(M ⊙ t(N))
    if isinstance(node, mx.Trace) and isinstance(node.child, mx.MatMul):
        product = node.child
        return mx.SumAll(mx.Hadamard(product.left, mx.Transpose(product.right)))
    # sum(M N) -> sum(t(colSums(M)) ⊙ rowSums(N))
    if isinstance(node, mx.SumAll) and isinstance(node.child, mx.MatMul):
        product = node.child
        return mx.SumAll(
            mx.Hadamard(mx.Transpose(mx.ColSums(product.left)), mx.RowSums(product.right))
        )
    # sum(M + N) -> sum(M) + sum(N)
    if isinstance(node, mx.SumAll) and isinstance(node.child, mx.Add):
        addition = node.child
        return mx.Add(mx.SumAll(addition.left), mx.SumAll(addition.right))
    # colSums(M N) -> colSums(M) N   /   rowSums(M N) -> M rowSums(N)
    if isinstance(node, mx.ColSums) and isinstance(node.child, mx.MatMul):
        product = node.child
        return mx.MatMul(mx.ColSums(product.left), product.right)
    if isinstance(node, mx.RowSums) and isinstance(node.child, mx.MatMul):
        product = node.child
        return mx.MatMul(product.left, mx.RowSums(product.right))
    return node


class SystemMLLikeBackend(NumpyBackend):
    """Executes after applying SystemML's own (static, local) optimizations."""

    name = "systemml_like"

    def __init__(self, catalog, apply_static_rules: bool = True, reorder_chains: bool = True):
        super().__init__(catalog)
        self.apply_static_rules = apply_static_rules
        self.reorder_chains = reorder_chains

    def optimize_locally(self, expr: mx.Expr) -> mx.Expr:
        """The plan SystemML itself would execute for this expression."""
        optimized = expr
        if self.apply_static_rules:
            optimized = transform_bottom_up(optimized, _static_rewrite)
        if self.reorder_chains:
            optimized = optimize_matmul_chains(optimized, self.catalog)
        return optimized

    def evaluate(self, expr: mx.Expr) -> Value:
        return super().evaluate(self.optimize_locally(expr))
