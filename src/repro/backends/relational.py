"""A small relational engine over in-memory column tables.

This is the SparkSQL stand-in for the RA preprocessing stage of hybrid
queries: selection (conjunctive comparison / substring predicates),
projection, hash equi-join and the casts between tables and matrices.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import BackendCapabilities
from repro.data.catalog import Catalog
from repro.data.table import Table
from repro.exceptions import ExecutionError, TypeMismatchError
from repro.lang import relational_expr as rx


class RelationalEngine:
    """Evaluates :class:`~repro.lang.relational_expr.RelExpr` trees."""

    name = "relational"
    #: RA only: never a fallback candidate for LA plans (``execute_plan``
    #: refuses them); participates through the hybrid path instead.
    capabilities = BackendCapabilities(supports_la=False, supports_ra=True)

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._la_backend = NumpyBackend(catalog)

    # -- public API ----------------------------------------------------------------
    def execute_plan(self, result, use_rewritten: bool = True):
        """Refuse LA plans: this engine executes only the RA side of queries.

        The relational engine participates in the service layer through the
        hybrid path (builder materialization in
        :class:`repro.hybrid.executor.HybridExecutor`), not as a target for
        rewritten LA plans.  Raising :class:`ExecutionError` here lets the
        :class:`repro.service.ExecutionRouter` fall back to an LA backend
        when a policy (or an explicit request) names this engine anyway.
        """
        raise ExecutionError(
            "the relational engine executes the RA part of hybrid queries; "
            "route LA plans to an LA backend (numpy / systemml_like / morpheus)"
        )

    def evaluate(self, expr: rx.RelExpr) -> Table:
        """Evaluate a relational expression to a :class:`Table`."""
        if isinstance(expr, rx.TableRef):
            return self.catalog.table(expr.name)
        if isinstance(expr, rx.Selection):
            return self._selection(expr)
        if isinstance(expr, rx.Projection):
            child = self.evaluate(expr.child)
            return child.select_columns(expr.columns)
        if isinstance(expr, rx.Join):
            return self._join(expr)
        if isinstance(expr, rx.MatrixToTable):
            value = self._la_backend.evaluate(expr.matrix)
            return Table.from_matrix("matrix_result", np.asarray(value), expr.columns)
        if isinstance(expr, rx.TableToMatrix):
            raise ExecutionError("use evaluate_to_matrix for TableToMatrix expressions")
        raise ExecutionError(f"unsupported relational operator {expr.op!r}")

    def evaluate_to_matrix(self, expr: rx.TableToMatrix) -> np.ndarray:
        """Evaluate a TableToMatrix node to a dense feature matrix."""
        table = self.evaluate(expr.child)
        return table.to_matrix(expr.columns)

    # -- operators ------------------------------------------------------------------
    def _selection(self, expr: rx.Selection) -> Table:
        table = self.evaluate(expr.child)
        mask = np.ones(table.n_rows, dtype=bool)
        for predicate in expr.predicates:
            mask &= self._predicate_mask(table, predicate)
        return table.take(np.nonzero(mask)[0])

    def _predicate_mask(self, table: Table, predicate: rx.Predicate) -> np.ndarray:
        column = table.column(predicate.column)
        if predicate.is_column_rhs:
            other = table.column(str(predicate.value))
            left, right = np.asarray(column), np.asarray(other)
        else:
            left, right = column, predicate.value
        comparator = predicate.comparator
        if comparator == "like":
            if isinstance(left, np.ndarray):
                raise TypeMismatchError("LIKE predicates require a string column")
            needle = str(right)
            return np.asarray([needle in str(value) for value in left], dtype=bool)
        if isinstance(left, list):
            left = np.asarray(left)
            right = np.asarray(right) if predicate.is_column_rhs else right
        ops = {
            "==": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        return np.asarray(ops[comparator](left, right), dtype=bool)

    def _join(self, expr: rx.Join) -> Table:
        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)
        left_keys = np.asarray(left.column(expr.left_key))
        right_keys = np.asarray(right.column(expr.right_key))
        # Hash join: index the right side by key value.
        index: Dict[float, List[int]] = {}
        for position, key in enumerate(right_keys):
            index.setdefault(float(key), []).append(position)
        left_rows: List[int] = []
        right_rows: List[int] = []
        for position, key in enumerate(left_keys):
            for match in index.get(float(key), ()):
                left_rows.append(position)
                right_rows.append(match)
        left_result = left.take(left_rows)
        right_result = right.take(right_rows)
        columns = {}
        for name in left_result.columns:
            columns[name] = left_result.column(name)
        for name in right_result.columns:
            target = name if name not in columns else f"{name}_r"
            columns[target] = right_result.column(name)
        return Table(f"{left.name}_join_{right.name}", columns)
