"""A Morpheus-style backend: factorized LA over normalized matrices.

Morpheus avoids materialising the PK-FK join of an entity table S with an
attribute table R: the joined feature matrix is kept as a *normalized
matrix* ``M = [S, K R]`` (K the sparse indicator matrix of the foreign key)
and LA operators over M are rewritten into operators over S, K and R.

This backend reproduces the operator pushdowns the paper's Figure 9 / 12
experiments rely on:

* right multiplication      ``M N   = [S N1 + K (R N2)]`` (N split row-wise),
* left multiplication       ``C M   = [C S, (C K) R]``,
* column sums               ``colSums(M) = [colSums(S), colSums(K) R]``,
* row sums                  ``rowSums(M) = rowSums(S) + K rowSums(R)``,
* full sum                  ``sum(M) = sum(S) + sum(K R)`` (via colSums(K)·R),
* transpose-aware variants  (ops on Mᵀ are replaced by ops on M),
* element-wise operators fall back to materialising M (Morpheus does not
  factorize them — which is exactly what HADAD exploits in P2.11).

A named matrix is treated as normalized when the catalog registers a
:class:`NormalizedMatrix` for it (see :meth:`MorpheusBackend.register`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.backends.base import EvaluationResult, Value, to_dense
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import BackendCapabilities
from repro.exceptions import ExecutionError
from repro.lang import matrix_expr as mx
from repro.lang.visitor import matrix_ref_names


def factor_names(name: str) -> Tuple[str, str, str]:
    """Catalog names under which ``name``'s Morpheus factors are stored.

    The single source of the ``M__S`` / ``M__K`` / ``M__R`` convention:
    :meth:`repro.hybrid.optimizer.HybridOptimizer.ensure_factor_matrices`
    registers factors under these names,
    :meth:`MorpheusBackend.register_catalog_factors` binds them at
    execution time, and the service router's default policy probes them to
    decide factorized routing.
    """
    return (f"{name}__S", f"{name}__K", f"{name}__R")


@dataclass
class NormalizedMatrix:
    """The factorized representation M = [S, K R] of a PK-FK join result."""

    name: str
    entity_part: np.ndarray          # S : n_S x d_S
    indicator: sparse.spmatrix       # K : n_S x n_R
    attribute_part: np.ndarray       # R : n_R x d_R

    @property
    def shape(self):
        return (
            self.entity_part.shape[0],
            self.entity_part.shape[1] + self.attribute_part.shape[1],
        )

    def materialize(self) -> np.ndarray:
        """The denormalized (joined) feature matrix [S, K R]."""
        joined_right = self.indicator @ self.attribute_part
        return np.hstack([self.entity_part, np.asarray(joined_right)])

    # -- factorized operators ---------------------------------------------------
    def right_multiply(self, other: np.ndarray) -> np.ndarray:
        d_s = self.entity_part.shape[1]
        top, bottom = other[:d_s, :], other[d_s:, :]
        return self.entity_part @ top + self.indicator @ (self.attribute_part @ bottom)

    def left_multiply(self, other: np.ndarray) -> np.ndarray:
        left = other @ self.entity_part
        right = (other @ self.indicator) @ self.attribute_part
        return np.hstack([np.asarray(left), np.asarray(right)])

    def col_sums(self) -> np.ndarray:
        entity = self.entity_part.sum(axis=0, keepdims=True)
        indicator_cols = np.asarray(self.indicator.sum(axis=0))
        attribute = indicator_cols @ self.attribute_part
        return np.hstack([entity, np.asarray(attribute)])

    def row_sums(self) -> np.ndarray:
        entity = self.entity_part.sum(axis=1, keepdims=True)
        attribute = self.indicator @ self.attribute_part.sum(axis=1, keepdims=True)
        return entity + np.asarray(attribute)

    def total_sum(self) -> float:
        indicator_cols = np.asarray(self.indicator.sum(axis=0))
        return float(self.entity_part.sum() + (indicator_cols @ self.attribute_part).sum())


class MorpheusBackend(NumpyBackend):
    """NumPy backend extended with factorized execution over normalized matrices.

    The backend applies Morpheus' pushdown rules *locally*, i.e. only when the
    operator's direct operand is a normalized matrix (or its transpose) — it
    performs no global rewriting, which is why HADAD's externally supplied
    rewritings (e.g. ``colSums(M N)`` → ``colSums(M) N``) enable pushdowns that
    Morpheus alone misses.
    """

    name = "morpheus"
    capabilities = BackendCapabilities(supports_la=True, supports_factorized=True)

    def __init__(self, catalog):
        super().__init__(catalog)
        self._normalized: Dict[str, NormalizedMatrix] = {}
        #: For each *auto*-registered normalized matrix (see
        #: :meth:`register_catalog_factors`), the identities of the three
        #: factor :class:`~repro.data.matrix.MatrixData` objects the
        #: snapshot was taken from.  Registrations replace those objects, so
        #: an identity change means the factors were re-materialized and the
        #: snapshot must refresh — while unrelated catalog activity leaves
        #: them untouched and costs nothing.  Manually registered matrices
        #: are caller-owned and never refreshed.
        self._auto_registered: Dict[str, Tuple] = {}
        #: Serializes registration: the service layer drives one shared
        #: backend instance from many executor threads.  Reentrant because
        #: :meth:`register_catalog_factors` registers while holding it.
        self._factors_lock = threading.RLock()

    def register(self, normalized: NormalizedMatrix) -> NormalizedMatrix:
        """Declare a catalog matrix name as being stored in factorized form."""
        with self._factors_lock:
            self._normalized[normalized.name] = normalized
        return normalized

    def normalized(self, name: str) -> Optional[NormalizedMatrix]:
        return self._normalized.get(name)

    def register_catalog_factors(self, expr: mx.Expr) -> List[str]:
        """Auto-register normalized matrices whose factors live in the catalog.

        For every matrix reference ``M`` in ``expr`` that is not yet declared
        normalized, looks for materialized ``M__S`` / ``M__K`` / ``M__R``
        factors — the naming convention under which
        :meth:`repro.hybrid.optimizer.HybridOptimizer.ensure_factor_matrices`
        stores them — and registers the factorized form when all three exist.
        An auto-registered snapshot is refreshed exactly when its factor
        matrices were re-materialized (their catalog entries replaced), so
        a base-table replacement is never served stale while unrelated
        catalog registrations cause no re-snapshotting; matrices registered
        manually via :meth:`register` are left untouched.  Returns the
        names newly (re-)registered.
        """
        registered: List[str] = []
        with self._factors_lock:
            for name in sorted(matrix_ref_names(expr)):
                stored = self._auto_registered.get(name)
                if name in self._normalized and stored is None:
                    continue
                names = factor_names(name)
                if not all(self.catalog.has_matrix_values(f) for f in names):
                    continue
                # A concurrent re-materialization can swap factor entries
                # between the three fetches; re-fetch until two consecutive
                # reads agree so the snapshot comes from one generation.
                sources = tuple(self.catalog.matrix(f) for f in names)
                for _ in range(3):
                    refetched = tuple(self.catalog.matrix(f) for f in names)
                    if all(a is b for a, b in zip(sources, refetched)):
                        break
                    sources = refetched
                if stored is not None and all(
                    a is b for a, b in zip(stored, sources)
                ):
                    continue
                s_data, k_data, r_data = sources
                self.register(
                    NormalizedMatrix(
                        name=name,
                        entity_part=to_dense(s_data.values),
                        indicator=sparse.csr_matrix(k_data.values),
                        attribute_part=to_dense(r_data.values),
                    )
                )
                self._auto_registered[name] = sources
                registered.append(name)
        return registered

    def execute_plan(self, result, use_rewritten: bool = True) -> EvaluationResult:
        """Execute a plan, first binding any catalog-stored factor matrices.

        This makes the backend routable by the service layer without manual
        :meth:`register` calls: a plan whose leaves have ``__S/__K/__R``
        factors in the catalog executes factorized automatically.  The
        returned ``seconds`` include the factor-binding work — it is part
        of the latency the caller actually paid for this execution.
        """
        bind_start = time.perf_counter()
        self.register_catalog_factors(result.best if use_rewritten else result.original)
        bind_seconds = time.perf_counter() - bind_start
        evaluation = super().execute_plan(result, use_rewritten=use_rewritten)
        return EvaluationResult(
            value=evaluation.value, seconds=evaluation.seconds + bind_seconds
        )

    # -- helpers ------------------------------------------------------------------
    def _as_normalized(self, expr: mx.Expr) -> Optional[NormalizedMatrix]:
        if isinstance(expr, mx.MatrixRef):
            return self._normalized.get(expr.name)
        return None

    def _is_normalized_transpose(self, expr: mx.Expr) -> Optional[NormalizedMatrix]:
        if isinstance(expr, mx.Transpose):
            return self._as_normalized(expr.child)
        return None

    # -- overridden evaluation ---------------------------------------------------------
    def evaluate(self, expr: mx.Expr) -> Value:
        if isinstance(expr, mx.MatrixRef):
            normalized = self._normalized.get(expr.name)
            if normalized is not None:
                return normalized.materialize()
            return super().evaluate(expr)

        if isinstance(expr, mx.MatMul):
            left_norm = self._as_normalized(expr.left)
            right_norm = self._as_normalized(expr.right)
            if left_norm is not None and right_norm is None:
                return left_norm.right_multiply(to_dense(self.evaluate(expr.right)))
            if right_norm is not None and left_norm is None:
                return right_norm.left_multiply(to_dense(self.evaluate(expr.left)))

        if isinstance(expr, mx.ColSums):
            normalized = self._as_normalized(expr.child)
            if normalized is not None:
                return normalized.col_sums()
            transposed = self._is_normalized_transpose(expr.child)
            if transposed is not None:
                return transposed.row_sums().T

        if isinstance(expr, mx.RowSums):
            normalized = self._as_normalized(expr.child)
            if normalized is not None:
                return normalized.row_sums()
            transposed = self._is_normalized_transpose(expr.child)
            if transposed is not None:
                return transposed.col_sums().T

        if isinstance(expr, mx.SumAll):
            normalized = self._as_normalized(expr.child)
            if normalized is None:
                normalized = self._is_normalized_transpose(expr.child)
            if normalized is not None:
                return normalized.total_sum()

        return super().evaluate(expr)
