"""Execution backends (the substrates HADAD sits on top of).

HADAD itself never executes anything; it hands the rewritten expression to an
unchanged execution platform.  The paper evaluates on R, NumPy, TensorFlow,
SparkMLlib, SystemML, MorpheusR and SparkSQL; this package provides the
equivalent substrates:

* :class:`~repro.backends.numpy_backend.NumpyBackend` — evaluates the
  expression *as stated* (syntactic order, no algebraic rewriting) on
  NumPy / SciPy kernels; the stand-in for R, NumPy, TensorFlow and MLlib.
* :class:`~repro.backends.systemml_like.SystemMLLikeBackend` — first applies
  SystemML's static rewrite rules and a multiplication-chain reordering, then
  executes; the partially-optimizing baseline.
* :class:`~repro.backends.morpheus.MorpheusBackend` — factorized LA over
  normalized (PK-FK join) matrices, with Morpheus' pushdown rules.
* :class:`~repro.backends.relational.RelationalEngine` — selection,
  projection, hash join and table↔matrix conversion over in-memory column
  tables; the stand-in for SparkSQL in the hybrid experiments.

Every backend shares the ``execute_plan`` entry point declared on
:class:`~repro.backends.base.Backend`: it takes a finished
:class:`~repro.core.result.RewriteResult`, binds catalog data and times the
run, which is how the :class:`repro.service.ExecutionRouter` dispatches
plans (and falls back across backends on
:class:`~repro.exceptions.ExecutionError`).
"""

from repro.backends.base import Backend, EvaluationResult
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import BackendCapabilities, BackendRegistry, capabilities_of
from repro.backends.systemml_like import SystemMLLikeBackend
from repro.backends.morpheus import MorpheusBackend, NormalizedMatrix, factor_names
from repro.backends.relational import RelationalEngine

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendRegistry",
    "EvaluationResult",
    "NumpyBackend",
    "SystemMLLikeBackend",
    "MorpheusBackend",
    "NormalizedMatrix",
    "capabilities_of",
    "factor_names",
    "RelationalEngine",
]
