"""Common backend machinery: the contract every execution substrate implements.

A backend turns a finished LA expression into a value.  The contract has
three entry points, layered from low to high:

* :meth:`Backend.evaluate` — recursively evaluate one expression (abstract;
  each substrate provides its own kernels);
* :meth:`Backend.timed` — evaluate and measure wall-clock time, the quantity
  the paper reports as Q_exec / RW_exec;
* :meth:`Backend.execute_plan` — the service-layer entry point: take a whole
  :class:`~repro.core.result.RewriteResult` from the planner, bind catalog
  data for its leaves and run the chosen rewriting (or, on request, the
  original expression).  Backends override it to prepare
  substrate-specific state first — e.g. the Morpheus backend auto-registers
  factorized matrices — while the :class:`repro.service.ExecutionRouter`
  only ever talks to this one method.

Every failure a backend signals must be an
:class:`~repro.exceptions.ExecutionError`: the router's fallback chain
catches exactly that type and moves on to the next candidate backend.

The module also hosts the shared value helpers (:func:`to_dense`,
:func:`values_allclose`) used by the harness and the tests to compare
original and rewritten executions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

import numpy as np
from scipy import sparse

from repro.backends.registry import BackendCapabilities
from repro.data.catalog import Catalog
from repro.exceptions import ExecutionError
from repro.lang import matrix_expr as mx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.result import RewriteResult

Value = Union[np.ndarray, sparse.spmatrix, float]


@dataclass
class EvaluationResult:
    """Value of an expression together with its wall-clock evaluation time."""

    value: Value
    seconds: float

    def as_dense(self) -> np.ndarray:
        if sparse.issparse(self.value):
            return np.asarray(self.value.todense())
        return np.asarray(self.value)


class Backend:
    """Base class: resolves leaves from a catalog and times evaluations."""

    name = "backend"
    #: What this substrate can run; subclasses override the class attribute
    #: (see :class:`repro.backends.registry.BackendCapabilities`).  Routing
    #: consults the declaration instead of hardcoding backend names.
    capabilities = BackendCapabilities()

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- to be provided by subclasses -------------------------------------------
    def evaluate(self, expr: mx.Expr) -> Value:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------
    def timed(self, expr: mx.Expr) -> EvaluationResult:
        """Evaluate and measure wall-clock time (the paper's Q_exec / RW_exec)."""
        start = time.perf_counter()
        value = self.evaluate(expr)
        return EvaluationResult(value=value, seconds=time.perf_counter() - start)

    def execute_plan(
        self, result: "RewriteResult", use_rewritten: bool = True
    ) -> EvaluationResult:
        """Execute a finished plan — the common service-layer entry point.

        Evaluates ``result.best`` (the planner's chosen rewriting) or, with
        ``use_rewritten=False``, the original expression, resolving leaves
        from this backend's catalog and timing the run.  Subclasses override
        this to bind substrate-specific state before evaluation (the
        Morpheus backend registers factorized matrices here); any failure
        must surface as :class:`~repro.exceptions.ExecutionError` so the
        :class:`repro.service.ExecutionRouter` can fall back to another
        backend.
        """
        expr = result.best if use_rewritten else result.original
        return self.timed(expr)

    def leaf_value(self, expr: mx.Expr) -> Value:
        """Resolve the stored value of a leaf node."""
        if isinstance(expr, mx.MatrixRef):
            if not self.catalog.has_matrix_values(expr.name):
                raise ExecutionError(
                    f"matrix {expr.name!r} has no materialized values in the catalog"
                )
            return self.catalog.matrix(expr.name).values
        if isinstance(expr, mx.ScalarConst):
            return float(expr.value)
        if isinstance(expr, mx.ScalarRef):
            return float(self.catalog.scalar(expr.name))
        if isinstance(expr, mx.Identity):
            return np.eye(expr.n)
        if isinstance(expr, mx.Zero):
            return np.zeros((expr.rows, expr.cols))
        raise ExecutionError(f"{expr!r} is not a leaf expression")


def to_dense(value: Value) -> np.ndarray:
    """Coerce any backend value to a dense 2-D array (scalars become 1x1)."""
    if sparse.issparse(value):
        return np.asarray(value.todense())
    if np.isscalar(value):
        return np.asarray([[float(value)]])
    array = np.asarray(value, dtype=np.float64)
    if array.ndim == 0:
        return array.reshape(1, 1)
    if array.ndim == 1:
        return array.reshape(-1, 1)
    return array


def values_allclose(left: Value, right: Value, rtol: float = 1e-6, atol: float = 1e-6) -> bool:
    """Numerical equality of two backend values (used to verify rewrites)."""
    return np.allclose(to_dense(left), to_dense(right), rtol=rtol, atol=atol)
