"""The as-stated NumPy/SciPy evaluator.

This backend executes an LA expression exactly in its syntactic order, with
no algebraic rewriting — the behaviour the paper ascribes to R, NumPy,
TensorFlow and SparkMLlib, and the reason HADAD's external rewriting pays
off on those systems.  Sparse operands stay sparse where SciPy supports it.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import linalg as scipy_linalg
from scipy import sparse

from repro.backends.base import Backend, Value, to_dense
from repro.exceptions import ExecutionError
from repro.lang import matrix_expr as mx


def _densify_if_needed(value: Value) -> Value:
    return to_dense(value) if sparse.issparse(value) else value


class NumpyBackend(Backend):
    """Evaluate expressions as stated on NumPy / SciPy kernels."""

    name = "numpy"

    def evaluate(self, expr: mx.Expr) -> Value:
        if not expr.children:
            return self.leaf_value(expr)
        method = getattr(self, f"_eval_{expr.op}", None)
        if method is None:
            raise ExecutionError(f"NumpyBackend cannot evaluate operator {expr.op!r}")
        return method(expr)

    # -- helpers ---------------------------------------------------------------
    def _child(self, expr: mx.Expr, index: int = 0) -> Value:
        return self.evaluate(expr.children[index])

    @staticmethod
    def _as_matrix(value: Value) -> np.ndarray:
        return to_dense(value)

    @staticmethod
    def _scalar(value: Value) -> float:
        if np.isscalar(value):
            return float(value)
        dense = to_dense(value)
        if dense.size != 1:
            raise ExecutionError("expected a scalar value")
        return float(dense.reshape(-1)[0])

    # -- binary operators ---------------------------------------------------------
    def _eval_multi_m(self, expr: mx.MatMul) -> Value:
        left, right = self._child(expr, 0), self._child(expr, 1)
        if sparse.issparse(left) or sparse.issparse(right):
            return sparse.csr_matrix(left) @ sparse.csr_matrix(right)
        return self._as_matrix(left) @ self._as_matrix(right)

    def _eval_add_m(self, expr: mx.Add) -> Value:
        left, right = self._child(expr, 0), self._child(expr, 1)
        if sparse.issparse(left) and sparse.issparse(right):
            return left + right
        return self._broadcast(left) + self._broadcast(right)

    def _eval_sub_m(self, expr: mx.Sub) -> Value:
        left, right = self._child(expr, 0), self._child(expr, 1)
        if sparse.issparse(left) and sparse.issparse(right):
            return left - right
        return self._broadcast(left) - self._broadcast(right)

    def _eval_div_m(self, expr: mx.ElemDiv) -> Value:
        left, right = self._broadcast(self._child(expr, 0)), self._broadcast(self._child(expr, 1))
        return np.divide(left, right, out=np.zeros_like(left * np.ones_like(right)), where=right != 0)

    def _eval_multi_e(self, expr: mx.Hadamard) -> Value:
        left, right = self._child(expr, 0), self._child(expr, 1)
        if sparse.issparse(left):
            return left.multiply(self._broadcast(right))
        if sparse.issparse(right):
            return right.multiply(self._broadcast(left))
        return self._broadcast(left) * self._broadcast(right)

    def _broadcast(self, value: Value):
        """Dense representation that broadcasts 1x1 values as scalars."""
        if np.isscalar(value):
            return float(value)
        dense = to_dense(value)
        if dense.size == 1:
            return float(dense.reshape(-1)[0])
        return dense

    def _eval_multi_ms(self, expr: mx.ScalarMul) -> Value:
        scalar = self._scalar(self._child(expr, 0))
        matrix = self._child(expr, 1)
        if sparse.issparse(matrix):
            return matrix.multiply(scalar)
        return scalar * self._as_matrix(matrix)

    def _eval_sum_d(self, expr: mx.DirectSum) -> Value:
        left, right = self._as_matrix(self._child(expr, 0)), self._as_matrix(self._child(expr, 1))
        out = np.zeros((left.shape[0] + right.shape[0], left.shape[1] + right.shape[1]))
        out[: left.shape[0], : left.shape[1]] = left
        out[left.shape[0]:, left.shape[1]:] = right
        return out

    def _eval_product_d(self, expr: mx.DirectProduct) -> Value:
        return np.kron(
            self._as_matrix(self._child(expr, 0)), self._as_matrix(self._child(expr, 1))
        )

    def _eval_cbind(self, expr: mx.CBind) -> Value:
        return np.hstack(
            [self._as_matrix(self._child(expr, 0)), self._as_matrix(self._child(expr, 1))]
        )

    def _eval_rbind(self, expr: mx.RBind) -> Value:
        return np.vstack(
            [self._as_matrix(self._child(expr, 0)), self._as_matrix(self._child(expr, 1))]
        )

    # -- unary matrix -> matrix ------------------------------------------------------
    def _eval_tr(self, expr: mx.Transpose) -> Value:
        child = self._child(expr)
        if sparse.issparse(child):
            return child.T.tocsr()
        return self._as_matrix(child).T

    def _eval_inv_m(self, expr: mx.Inverse) -> Value:
        return np.linalg.inv(self._as_matrix(self._child(expr)))

    def _eval_exp(self, expr: mx.MatExp) -> Value:
        return scipy_linalg.expm(self._as_matrix(self._child(expr)))

    def _eval_adj(self, expr: mx.Adjoint) -> Value:
        matrix = self._as_matrix(self._child(expr))
        return np.linalg.det(matrix) * np.linalg.inv(matrix)

    def _eval_diag(self, expr: mx.Diag) -> Value:
        matrix = self._as_matrix(self._child(expr))
        if matrix.shape[1] == 1:
            return np.diag(matrix.reshape(-1))
        return np.diag(matrix).reshape(-1, 1)

    def _eval_rev(self, expr: mx.Rev) -> Value:
        return self._as_matrix(self._child(expr))[::-1, :]

    def _eval_row_sums(self, expr: mx.RowSums) -> Value:
        child = self._child(expr)
        if sparse.issparse(child):
            return np.asarray(child.sum(axis=1))
        return self._as_matrix(child).sum(axis=1, keepdims=True)

    def _eval_col_sums(self, expr: mx.ColSums) -> Value:
        child = self._child(expr)
        if sparse.issparse(child):
            return np.asarray(child.sum(axis=0))
        return self._as_matrix(child).sum(axis=0, keepdims=True)

    def _eval_row_means(self, expr: mx.RowMeans) -> Value:
        return self._as_matrix(self._child(expr)).mean(axis=1, keepdims=True)

    def _eval_col_means(self, expr: mx.ColMeans) -> Value:
        return self._as_matrix(self._child(expr)).mean(axis=0, keepdims=True)

    def _eval_row_max(self, expr: mx.RowMax) -> Value:
        return self._as_matrix(self._child(expr)).max(axis=1, keepdims=True)

    def _eval_col_max(self, expr: mx.ColMax) -> Value:
        return self._as_matrix(self._child(expr)).max(axis=0, keepdims=True)

    def _eval_row_min(self, expr: mx.RowMin) -> Value:
        return self._as_matrix(self._child(expr)).min(axis=1, keepdims=True)

    def _eval_col_min(self, expr: mx.ColMin) -> Value:
        return self._as_matrix(self._child(expr)).min(axis=0, keepdims=True)

    def _eval_row_var(self, expr: mx.RowVar) -> Value:
        return self._as_matrix(self._child(expr)).var(axis=1, ddof=1, keepdims=True)

    def _eval_col_var(self, expr: mx.ColVar) -> Value:
        return self._as_matrix(self._child(expr)).var(axis=0, ddof=1, keepdims=True)

    # -- unary matrix -> scalar -------------------------------------------------------
    def _eval_det(self, expr: mx.Det) -> Value:
        return float(np.linalg.det(self._as_matrix(self._child(expr))))

    def _eval_trace(self, expr: mx.Trace) -> Value:
        return float(np.trace(self._as_matrix(self._child(expr))))

    def _eval_sum(self, expr: mx.SumAll) -> Value:
        child = self._child(expr)
        if sparse.issparse(child):
            return float(child.sum())
        return float(self._as_matrix(child).sum())

    def _eval_mean(self, expr: mx.MeanAll) -> Value:
        return float(self._as_matrix(self._child(expr)).mean())

    def _eval_var(self, expr: mx.VarAll) -> Value:
        return float(self._as_matrix(self._child(expr)).var(ddof=1))

    def _eval_min(self, expr: mx.MinAll) -> Value:
        return float(self._as_matrix(self._child(expr)).min())

    def _eval_max(self, expr: mx.MaxAll) -> Value:
        return float(self._as_matrix(self._child(expr)).max())

    # -- powers and decompositions ---------------------------------------------------
    def _eval_mat_pow(self, expr: mx.MatPow) -> Value:
        return np.linalg.matrix_power(self._as_matrix(self._child(expr)), expr.exponent)

    def _eval_cho(self, expr: mx.CholeskyFactor) -> Value:
        return np.linalg.cholesky(self._as_matrix(self._child(expr)))

    def _eval_qr_q(self, expr: mx.QRFactorQ) -> Value:
        q, _ = np.linalg.qr(self._as_matrix(self._child(expr)))
        return q

    def _eval_qr_r(self, expr: mx.QRFactorR) -> Value:
        _, r = np.linalg.qr(self._as_matrix(self._child(expr)))
        return r

    def _lu(self, expr: mx.Expr):
        return scipy_linalg.lu(self._as_matrix(self._child(expr)))

    def _eval_lu_l(self, expr: mx.LUFactorL) -> Value:
        p, l, u = self._lu(expr)
        return p @ l

    def _eval_lu_u(self, expr: mx.LUFactorU) -> Value:
        _, _, u = self._lu(expr)
        return u

    def _eval_lup_l(self, expr: mx.LUPFactorL) -> Value:
        _, l, _ = self._lu(expr)
        return l

    def _eval_lup_u(self, expr: mx.LUPFactorU) -> Value:
        _, _, u = self._lu(expr)
        return u

    def _eval_lup_p(self, expr: mx.LUPFactorP) -> Value:
        p, _, _ = self._lu(expr)
        return p.T
