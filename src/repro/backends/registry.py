"""Capability-declaring registration of execution backends.

Before the :mod:`repro.api` consolidation the
:class:`~repro.service.router.ExecutionRouter` hardcoded which substrates
exist and — worse — which ones may serve as automatic fallbacks (a literal
``name != "relational"`` check).  This module replaces both with data:

* :class:`BackendCapabilities` — what a substrate can run: plain LA plans
  (``supports_la``), relational plans (``supports_ra``), factorized LA over
  normalized matrices (``supports_factorized``).  Every backend class
  *declares* its capabilities as a class attribute, so instances carry them
  wherever they go.
* :class:`BackendRegistry` — named factories plus their capabilities.  The
  router and :class:`repro.api.Engine` instantiate backends through it;
  registering a new substrate is one ``register`` call, with no router or
  policy edits: the default routing policy consults capabilities, never
  names.

The registry stores **factories** (``catalog -> backend``), not instances:
one registry can serve many engines over different catalogs, and a fresh
engine always gets fresh backend state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.catalog import Catalog

BackendFactory = Callable[["Catalog"], object]


@dataclass(frozen=True)
class BackendCapabilities:
    """What one execution substrate can run.

    ``supports_la``
        Plain LA plans (the planner's default output).  Backends without it
        are never auto-selected as fallbacks for LA plans.
    ``supports_ra``
        Relational plans; such backends participate through the hybrid
        path (builder materialization), not LA routing.
    ``supports_factorized``
        Factorized LA over normalized (PK-FK join) matrices; the default
        policy prefers such a backend when a plan touches a matrix whose
        factors are materialized.
    """

    supports_la: bool = True
    supports_ra: bool = False
    supports_factorized: bool = False


#: Capability set assumed for backends that declare nothing.
GENERIC_LA = BackendCapabilities()


def capabilities_of(backend: object) -> BackendCapabilities:
    """The capabilities an instance (or class) declares, else LA-only."""
    declared = getattr(backend, "capabilities", None)
    return declared if isinstance(declared, BackendCapabilities) else GENERIC_LA


class BackendRegistry:
    """Named backend factories together with their declared capabilities."""

    def __init__(self) -> None:
        self._factories: Dict[str, BackendFactory] = {}
        self._capabilities: Dict[str, BackendCapabilities] = {}

    # ------------------------------------------------------------------ registration
    def register(
        self,
        name: str,
        factory: BackendFactory,
        capabilities: Optional[BackendCapabilities] = None,
        replace: bool = False,
    ) -> None:
        """Register ``factory`` under ``name``.

        ``factory`` is any ``catalog -> backend`` callable — typically the
        backend class itself.  When ``capabilities`` is omitted they are
        read from the factory's ``capabilities`` class attribute (falling
        back to LA-only).  Re-registering an existing name requires
        ``replace=True`` so typos do not silently shadow a substrate.
        """
        if not isinstance(name, str) or not name:
            raise ConfigError(f"backend name must be a non-empty string, got {name!r}")
        if not callable(factory):
            raise ConfigError(
                f"backend factory for {name!r} must be callable, got {factory!r}"
            )
        if name in self._factories and not replace:
            raise ConfigError(
                f"backend {name!r} is already registered; pass replace=True to override"
            )
        self._factories[name] = factory
        self._capabilities[name] = (
            capabilities if capabilities is not None else capabilities_of(factory)
        )

    # ------------------------------------------------------------------ lookup
    def names(self) -> Tuple[str, ...]:
        """Registered backend names, in registration order."""
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def capabilities(self, name: str) -> BackendCapabilities:
        self._require(name)
        return self._capabilities[name]

    def la_names(self) -> List[str]:
        """Names of backends that can run plain LA plans (fallback pool)."""
        return [n for n in self._factories if self._capabilities[n].supports_la]

    def factorized_names(self) -> List[str]:
        """Names of backends that can run factorized plans."""
        return [n for n in self._factories if self._capabilities[n].supports_factorized]

    def _require(self, name: str) -> None:
        if name not in self._factories:
            raise ConfigError(
                f"unknown backend {name!r}; registered: {sorted(self._factories)}"
            )

    # ------------------------------------------------------------------ instantiation
    def create(self, name: str, catalog: "Catalog") -> object:
        """Instantiate the backend registered under ``name``."""
        self._require(name)
        return self._factories[name](catalog)

    def create_all(
        self, catalog: "Catalog", names: Optional[Iterable[str]] = None
    ) -> Dict[str, object]:
        """One fresh instance per requested name (all registered by default)."""
        selected = tuple(names) if names is not None else self.names()
        return {name: self.create(name, catalog) for name in selected}

    # ------------------------------------------------------------------ defaults
    @classmethod
    def with_defaults(cls) -> "BackendRegistry":
        """A registry of the four stock substrates.

        Imported lazily so this module stays import-neutral (usable from
        config/validation code without dragging in numpy-heavy backends).
        """
        from repro.backends.morpheus import MorpheusBackend
        from repro.backends.numpy_backend import NumpyBackend
        from repro.backends.relational import RelationalEngine
        from repro.backends.systemml_like import SystemMLLikeBackend

        registry = cls()
        registry.register("numpy", NumpyBackend)
        registry.register("systemml_like", SystemMLLikeBackend)
        registry.register("morpheus", MorpheusBackend)
        registry.register("relational", RelationalEngine)
        return registry


__all__ = [
    "BackendCapabilities",
    "BackendFactory",
    "BackendRegistry",
    "GENERIC_LA",
    "capabilities_of",
]
