"""Run a slice of the paper's LA benchmark (Tables 2/3) end to end.

For a handful of P¬Opt pipelines this example prints, per pipeline, the
execution time as stated (Q_exec), HADAD's rewriting time (RW_find), the
execution time of the rewriting (RW_exec) and the speed-up — the same
quantities as Figures 5, 6 and 8 of the paper — on both the plain NumPy
backend and the SystemML-like backend.  Planning goes through one
:class:`repro.api.Engine` (pooled sessions, shared plan cache); the two
backend instances come from the engine's capability-declaring registry.

Run with:  python examples/la_pipelines_benchmark.py
(set REPRO_SMOKE=1 for the CI-sized catalog)
"""

import os

from repro.api import Engine
from repro.benchkit.datasets import ROLE_BINDINGS_DENSE, benchmark_catalog
from repro.benchkit.harness import print_report, run_pipeline
from repro.benchkit.pipelines import build_pipeline, default_roles
from repro.cost import MNCEstimator

SMOKE = os.environ.get("REPRO_SMOKE") == "1"

PIPELINES_TO_RUN = (
    ["P1.1", "P1.3", "P2.10"]
    if SMOKE
    else ["P1.1", "P1.3", "P1.4", "P1.13", "P1.15", "P2.10", "P2.11", "P2.25"]
)


def main() -> None:
    catalog = benchmark_catalog(scale=0.002 if SMOKE else 0.01)
    roles = default_roles(ROLE_BINDINGS_DENSE)
    engine = Engine(catalog, estimator=MNCEstimator())

    for backend_name in ("numpy", "systemml_like"):
        backend = engine.router.backends[backend_name]
        runs = [
            run_pipeline(name, build_pipeline(name, roles), engine, backend)
            for name in PIPELINES_TO_RUN
        ]
        print(print_report(f"backend = {backend.name}", runs))
        print()


if __name__ == "__main__":
    main()
