"""Factorized LA over a normalized join, with and without HADAD (paper §2 / Figure 9).

The running example of the paper: colSums(M N) where M is the (virtual)
result of a PK-FK join kept as a normalized matrix [S, K R].  Morpheus alone
pushes the multiplication by N into the factors; HADAD instead rewrites the
pipeline to colSums(M) N, after which Morpheus' colSums pushdown applies and
the intermediate shrinks from (rows x 40) to (1 x features).

Planning and execution both go through one :class:`repro.api.Engine`; the
Morpheus substrate comes from the engine's capability-declaring registry
(``supports_factorized``), and ``engine.execute(..., backend="morpheus")``
routes to it explicitly.

Run with:  python examples/morpheus_factorized.py
(set REPRO_SMOKE=1 for the CI-sized data)
"""

import os

import numpy as np
from scipy import sparse

from repro.api import Engine
from repro.backends import NormalizedMatrix
from repro.backends.base import values_allclose
from repro.data import Catalog
from repro.lang import colsums, matrix

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    rng = np.random.default_rng(1)
    if SMOKE:
        n_entities, n_attributes, d_s, d_r = 20_000, 2_000, 6, 14
    else:
        n_entities, n_attributes, d_s, d_r = 200_000, 20_000, 6, 14
    entity = rng.random((n_entities, d_s))
    attribute = rng.random((n_attributes, d_r))
    fk = rng.integers(0, n_attributes, size=n_entities)
    indicator = sparse.csr_matrix(
        (np.ones(n_entities), (np.arange(n_entities), fk)), shape=(n_entities, n_attributes)
    )

    catalog = Catalog()
    catalog.register_dense("Mjoin", np.hstack([entity, indicator @ attribute]))
    catalog.register_dense("Nright", rng.random((d_s + d_r, 40)))

    engine = Engine(catalog)
    assert engine.registry.capabilities("morpheus").supports_factorized
    morpheus = engine.router.backends["morpheus"]
    morpheus.register(NormalizedMatrix("Mjoin", entity, indicator, attribute))

    pipeline = colsums(matrix("Mjoin") @ matrix("Nright"))
    result = engine.rewrite(pipeline)
    print("original :", pipeline.to_string())
    print("rewritten:", result.best.to_string())

    base = engine.execute(pipeline, backend="morpheus")
    improved = engine.execute(result, backend="morpheus")
    assert base.backend == improved.backend == "morpheus"
    assert values_allclose(base.evaluation.value, improved.evaluation.value, rtol=1e-6, atol=1e-8)
    print(
        f"Morpheus alone      : {base.evaluation.seconds * 1e3:8.1f} ms\n"
        f"Morpheus + HADAD    : {improved.evaluation.seconds * 1e3:8.1f} ms\n"
        f"speed-up            : {base.evaluation.seconds / improved.evaluation.seconds:8.1f}x"
    )


if __name__ == "__main__":
    main()
