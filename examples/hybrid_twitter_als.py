"""Hybrid RA + LA example: the Twitter ALS scenario of the paper's §2.

The relational preprocessing joins the Tweet and User tables into a dense
feature matrix M and pivots the (filtered) tweet-hashtag fact table into an
ultra-sparse matrix N.  The analysis stage then evaluates the ALS building
block (u v^T + N^T) v together with a rowSums over X M.  HADAD rewrites the
analysis by distributing the multiplication over the addition (so the
ultra-sparse N^T v is computed directly) and by pushing the rowSums through
the product onto the normalized matrix, where the hybrid view
V3 = rowSums(T) + K rowSums(U) answers it.

The whole round trip — build the feature matrices, materialize the Morpheus
factors, plan, execute — goes through ``Engine.submit_hybrid``; adding the
hybrid views is one ``engine.with_views`` away.

Run with:  python examples/hybrid_twitter_als.py
(set REPRO_SMOKE=1 for the CI-sized dataset)
"""

import os

from repro.api import Engine
from repro.backends.base import values_allclose
from repro.benchkit.harness import materialize_views
from repro.benchkit.hybrid_queries import hybrid_queries, hybrid_views
from repro.data.datasets import twitter_dataset

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    catalog, spec = twitter_dataset(
        n_tweets=2_000 if SMOKE else 10_000,
        n_hashtags=100 if SMOKE else 400,
        density=0.002,
    )
    queries = hybrid_queries(catalog, spec, dataset="twitter")
    q1 = queries[0]

    # Without views: Q_RA (join + pivot builders) runs, the Morpheus factors
    # of Mfeat are materialized, and the LA analysis is rewritten with the
    # algebraic properties alone.
    engine = Engine(catalog)
    baseline = engine.submit_hybrid(q1)
    assert baseline.hybrid is not None
    print(f"Q_RA preprocessing: {baseline.hybrid.ra_seconds * 1e3:.1f} ms")
    print("original  Q_LA:", q1.analysis.to_string())
    print("baseline  plan:", baseline.rewrite.best.to_string())

    # With the hybrid views V3/V4/V5 over the factor matrices: the rowSums
    # pushdown now lands on a materialized answer.
    views = hybrid_views(catalog)
    materialize_views(views, catalog)
    viewed = engine.with_views(views)
    optimized = viewed.submit_hybrid(q1)
    assert optimized.hybrid is not None
    print("rewritten Q_LA:", optimized.rewrite.best.to_string())
    print("used views    :", optimized.rewrite.used_views)
    print(f"rewriting took {optimized.plan_seconds * 1e3:.1f} ms")

    assert values_allclose(baseline.value, optimized.value, rtol=1e-4, atol=1e-5)
    base_la = baseline.hybrid.la_seconds
    opt_la = optimized.hybrid.la_seconds
    speedup = base_la / opt_la if opt_la else float("inf")
    print(
        f"Q_LA execution: baseline {base_la * 1e3:.1f} ms, "
        f"with views {opt_la * 1e3:.1f} ms ({speedup:.1f}x)"
    )


if __name__ == "__main__":
    main()
