"""Hybrid RA + LA example: the Twitter ALS scenario of the paper's §2.

The relational preprocessing joins the Tweet and User tables into a dense
feature matrix M and pivots the (filtered) tweet-hashtag fact table into an
ultra-sparse matrix N.  The analysis stage then evaluates the ALS building
block (u v^T + N^T) v together with a rowSums over X M.  HADAD rewrites the
analysis by distributing the multiplication over the addition (so the
ultra-sparse N^T v is computed directly) and by pushing the rowSums through
the product onto the normalized matrix, where the hybrid view
V3 = rowSums(T) + K rowSums(U) answers it.

Run with:  python examples/hybrid_twitter_als.py
"""

from repro.backends.base import values_allclose
from repro.benchkit.harness import materialize_views
from repro.benchkit.hybrid_queries import hybrid_queries, hybrid_views
from repro.data.datasets import twitter_dataset
from repro.hybrid import HybridExecutor, HybridOptimizer


def main() -> None:
    catalog, spec = twitter_dataset(n_tweets=10_000, n_hashtags=400, density=0.002)
    queries = hybrid_queries(catalog, spec, dataset="twitter")
    q1 = queries[0]

    executor = HybridExecutor(catalog)
    # Q_RA: build M (join) and N (filtered pivot) once.
    preprocessing = executor.execute(q1)
    print(f"Q_RA preprocessing: {preprocessing.ra_seconds * 1e3:.1f} ms")

    # Declare the Morpheus factors of M and materialize the hybrid views.
    optimizer = HybridOptimizer(catalog)
    optimizer.ensure_factor_matrices(q1)
    views = hybrid_views(catalog)
    materialize_views(views, catalog)
    optimizer = HybridOptimizer(catalog, la_views=views)

    result = optimizer.rewrite(q1)
    print("original  Q_LA:", q1.analysis.to_string())
    print("rewritten Q_LA:", result.optimized_analysis.to_string())
    print(f"rewriting took {result.rewrite_seconds * 1e3:.1f} ms")

    original = executor.execute(q1, skip_builders=True)
    optimized = executor.execute(
        q1, analysis_override=result.optimized_analysis, skip_builders=True
    )
    assert values_allclose(original.value, optimized.value, rtol=1e-4, atol=1e-5)
    speedup = original.la_seconds / optimized.la_seconds if optimized.la_seconds else float("inf")
    print(
        f"Q_LA execution: original {original.la_seconds * 1e3:.1f} ms, "
        f"rewritten {optimized.la_seconds * 1e3:.1f} ms ({speedup:.1f}x)"
    )


if __name__ == "__main__":
    main()
