"""Quickstart: rewrite and execute an LA pipeline through the unified Engine.

Builds a small catalog of synthetic matrices, defines the OLS regression
pipeline (X^T X)^{-1} (X^T y), lets HADAD rewrite it — once without views and
once with a materialized view V = X^{-1} — and executes both versions through
``engine.execute`` to show they agree and how much time the rewriting saves.

Run with:  python examples/quickstart.py
(set REPRO_SMOKE=1 for the CI-sized catalog)
"""

import os

import numpy as np

from repro import Catalog, LAView
from repro.api import Engine
from repro.backends.base import values_allclose
from repro.benchkit.harness import materialize_views
from repro.lang import inv, matrix, transpose

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    rng = np.random.default_rng(0)
    catalog = Catalog()
    n = 120 if SMOKE else 600
    catalog.register_dense("X", rng.random((n, n)) + n * np.eye(n))
    catalog.register_dense("y", rng.random((n, 1)))

    X, y = matrix("X"), matrix("y")
    ols = inv(transpose(X) @ X) @ (transpose(X) @ y)

    # 1. Pure LA-property rewriting (no views available).
    engine = Engine(catalog)
    result = engine.rewrite(ols)
    print("original :", result.original.to_string())
    print("rewritten:", result.best.to_string())
    print(result.summary())

    # 2. With a materialized view V = X^{-1} (Figure 7(b) of the paper).
    view = LAView("V_xinv", inv(X))
    with_view = engine.with_views([view])
    materialize_views([view], catalog)
    view_result = with_view.rewrite(ols)
    print("\nwith view:", view_result.best.to_string(), "(uses", view_result.used_views, ")")

    # 3. Execute and compare — the engine routes both runs to a capable backend.
    original_run = with_view.execute(ols)
    rewritten_run = with_view.execute(view_result)
    assert values_allclose(
        original_run.evaluation.value, rewritten_run.evaluation.value, rtol=1e-6, atol=1e-8
    )
    seconds_original = original_run.evaluation.seconds
    seconds_rewritten = max(rewritten_run.evaluation.seconds, 1e-9)
    print(
        f"\nexecution on {rewritten_run.backend}: "
        f"original {seconds_original * 1e3:.1f} ms, "
        f"rewritten {seconds_rewritten * 1e3:.1f} ms, "
        f"speed-up {seconds_original / seconds_rewritten:.1f}x"
    )


if __name__ == "__main__":
    main()
