"""Quickstart: rewrite and execute an LA pipeline with HADAD.

Builds a small catalog of synthetic matrices, defines the OLS regression
pipeline (X^T X)^{-1} (X^T y), lets HADAD rewrite it — once without views and
once with a materialized view V = X^{-1} — and executes both versions on the
as-stated NumPy backend to show they agree and how much time the rewriting
saves.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import Catalog, HadadOptimizer, LAView
from repro.backends import NumpyBackend
from repro.backends.base import values_allclose
from repro.benchkit.harness import materialize_views
from repro.lang import inv, matrix, transpose


def main() -> None:
    rng = np.random.default_rng(0)
    catalog = Catalog()
    n = 600
    catalog.register_dense("X", rng.random((n, n)) + n * np.eye(n))
    catalog.register_dense("y", rng.random((n, 1)))

    X, y = matrix("X"), matrix("y")
    ols = inv(transpose(X) @ X) @ (transpose(X) @ y)
    backend = NumpyBackend(catalog)

    # 1. Pure LA-property rewriting (no views available).
    optimizer = HadadOptimizer(catalog)
    result = optimizer.rewrite(ols)
    print("original :", result.original.to_string())
    print("rewritten:", result.best.to_string())
    print(result.summary())

    # 2. With a materialized view V = X^{-1} (Figure 7(b) of the paper).
    view = LAView("V_xinv", inv(X))
    with_view = HadadOptimizer(catalog, views=[view])
    materialize_views([view], catalog)
    view_result = with_view.rewrite(ols)
    print("\nwith view:", view_result.best.to_string(), "(uses", view_result.used_views, ")")

    # 3. Execute and compare.
    original_run = backend.timed(ols)
    rewritten_run = backend.timed(view_result.best)
    assert values_allclose(original_run.value, rewritten_run.value, rtol=1e-6, atol=1e-8)
    print(
        f"\nexecution: original {original_run.seconds * 1e3:.1f} ms, "
        f"rewritten {rewritten_run.seconds * 1e3:.1f} ms, "
        f"speed-up {original_run.seconds / rewritten_run.seconds:.1f}x"
    )


if __name__ == "__main__":
    main()
